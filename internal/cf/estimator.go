package cf

import (
	"fmt"
	"math"
	"math/rand"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// Dataset is the application x knob-setting preference matrix the paper's
// framework accumulates: one row per previously-seen application, one
// column per (f, n, m) setting, and two values per cell — measured power
// and measured heartbeat rate.
type Dataset struct {
	// HW is the platform the measurements were taken on.
	HW simhw.Config
	// Cols is the canonical knob-setting order shared by all rows.
	Cols []workload.Knobs
	// Rows names the seen applications.
	Rows []string
	// PowerW[i][j] is application i's measured draw at setting j.
	PowerW [][]float64
	// LogRate[i][j] is log(measured heartbeat rate) at setting j; rates
	// live in log space because they vary multiplicatively across
	// applications.
	LogRate [][]float64
}

// BuildDataset measures every application in the library at every knob
// setting — the exhaustive profiling the online system cannot afford for
// a *new* application but accumulates over time for past ones.
func BuildDataset(cfg simhw.Config, lib *workload.Library) (*Dataset, error) {
	if lib == nil {
		return nil, fmt.Errorf("cf: nil library")
	}
	ds := &Dataset{HW: cfg, Cols: workload.EnumKnobs(cfg, cfg.CoresPerSocket)}
	for _, p := range lib.Apps() {
		row := make([]float64, len(ds.Cols))
		lrow := make([]float64, len(ds.Cols))
		for j, k := range ds.Cols {
			row[j] = p.Power(cfg, k)
			r := p.Rate(cfg, k)
			if r <= 0 {
				return nil, fmt.Errorf("cf: %s has non-positive rate at %v", p.Name, k)
			}
			lrow[j] = math.Log(r)
		}
		ds.Rows = append(ds.Rows, p.Name)
		ds.PowerW = append(ds.PowerW, row)
		ds.LogRate = append(ds.LogRate, lrow)
	}
	return ds, nil
}

// SampleCols draws a deterministic sample of ceil(frac*len(cols)) column
// indices for online measurement of a new application. The sample is
// stratified across the knob space (every k-th setting of a shuffled
// order) and always includes the unconstrained setting, so the
// normalization anchor is measured rather than estimated.
func (ds *Dataset) SampleCols(frac float64, seed int64) []int {
	n := len(ds.Cols)
	if n == 0 {
		return nil
	}
	want := int(math.Ceil(frac * float64(n)))
	if want < 2 {
		want = 2
	}
	if want > n {
		want = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := make([]int, 0, want)
	seen := make(map[int]bool, want)
	// Anchor: the maximal setting (last in EnumKnobs order).
	out = append(out, n-1)
	seen[n-1] = true
	for _, j := range perm {
		if len(out) >= want {
			break
		}
		if !seen[j] {
			out = append(out, j)
			seen[j] = true
		}
	}
	return out
}

// Estimate is the collaborative-filtering picture of one new application:
// predicted power and heartbeat rate at every knob setting, with measured
// cells kept exact.
type Estimate struct {
	ds *Dataset
	// powerW and rate are the fused (measured-or-predicted) values per
	// column.
	powerW []float64
	rate   []float64
	// measured marks exactly-known columns.
	measured []bool
}

// EstimateApp fits CF models from the dataset's seen applications plus
// the sparse online measurements of a new application, and returns the
// completed row. trainRows selects which dataset rows may be learned
// from (the cross-validation hook); nil means all. sampled lists the
// column indices measured online for the new application, and
// measurePower/measureRate supply those measurements.
func (ds *Dataset) EstimateApp(trainRows []int, sampled []int, measurePower, measureRate func(j int) float64, mc ModelConfig) (*Estimate, error) {
	if len(sampled) == 0 {
		return nil, fmt.Errorf("cf: new application needs at least one online sample")
	}
	if trainRows == nil {
		trainRows = make([]int, len(ds.Rows))
		for i := range trainRows {
			trainRows[i] = i
		}
	}
	nCols := len(ds.Cols)
	newRow := len(trainRows) // the new application's row index in the model

	var powerObs, rateObs []Observation
	for ri, i := range trainRows {
		for j := 0; j < nCols; j++ {
			powerObs = append(powerObs, Observation{Row: ri, Col: j, Value: ds.PowerW[i][j]})
			rateObs = append(rateObs, Observation{Row: ri, Col: j, Value: ds.LogRate[i][j]})
		}
	}
	est := &Estimate{
		ds:       ds,
		powerW:   make([]float64, nCols),
		rate:     make([]float64, nCols),
		measured: make([]bool, nCols),
	}
	for _, j := range sampled {
		if j < 0 || j >= nCols {
			return nil, fmt.Errorf("cf: sampled column %d outside %d settings", j, nCols)
		}
		pw, rt := measurePower(j), measureRate(j)
		if rt <= 0 {
			return nil, fmt.Errorf("cf: measured rate at column %d must be positive, got %g", j, rt)
		}
		est.powerW[j] = pw
		est.rate[j] = rt
		est.measured[j] = true
		powerObs = append(powerObs, Observation{Row: newRow, Col: j, Value: pw})
		rateObs = append(rateObs, Observation{Row: newRow, Col: j, Value: math.Log(rt)})
	}

	pm, err := Fit(newRow+1, nCols, powerObs, mc)
	if err != nil {
		return nil, fmt.Errorf("cf: power model: %w", err)
	}
	rm, err := Fit(newRow+1, nCols, rateObs, mc)
	if err != nil {
		return nil, fmt.Errorf("cf: rate model: %w", err)
	}
	for j := 0; j < nCols; j++ {
		if est.measured[j] {
			continue
		}
		est.powerW[j] = math.Max(0, pm.Predict(newRow, j))
		est.rate[j] = math.Exp(rm.Predict(newRow, j))
	}
	return est, nil
}

// PowerW returns the estimated (or measured) power at column j.
func (e *Estimate) PowerW(j int) float64 { return e.powerW[j] }

// Rate returns the estimated (or measured) heartbeat rate at column j.
func (e *Estimate) Rate(j int) float64 { return e.rate[j] }

// Measured reports whether column j was measured online.
func (e *Estimate) Measured(j int) bool { return e.measured[j] }

// Curve builds a utility curve from the estimate for an application
// entitled to maxCores cores: settings beyond the entitlement are
// dropped, performance is normalized to the estimated unconstrained
// rate, and the Pareto frontier is taken over estimated power. This is
// what the PowerAllocator consumes in place of the oracle curve.
func (e *Estimate) Curve(maxCores int) *workload.Curve {
	return e.CurveMargin(maxCores, 0)
}

// CurveMargin is Curve with a power safety margin: every setting's
// believed draw is inflated by the given fraction before the frontier is
// taken. Allocating against noisy estimates suffers a winner's curse —
// settings whose power was under-read look attractive — and a margin of
// about the measurement noise restores cap adherence (the knob Fig. 7's
// calibration turns).
func (e *Estimate) CurveMargin(maxCores int, margin float64) *workload.Curve {
	// Normalization anchor: the best estimated rate across settings the
	// application can actually use.
	var anchor float64
	for j, k := range e.ds.Cols {
		if k.Cores <= maxCores && e.rate[j] > anchor {
			anchor = e.rate[j]
		}
	}
	if anchor <= 0 {
		return workload.CurveFromEval(e.ds.HW, maxCores, func(workload.Knobs) (float64, float64) { return -1, -1 })
	}
	byKnobs := make(map[workload.Knobs]int, len(e.ds.Cols))
	for j, k := range e.ds.Cols {
		byKnobs[k] = j
	}
	return workload.CurveFromEval(e.ds.HW, maxCores, func(k workload.Knobs) (float64, float64) {
		j, ok := byKnobs[k]
		if !ok {
			return -1, -1
		}
		return e.powerW[j] * (1 + margin), e.rate[j] / anchor
	})
}
