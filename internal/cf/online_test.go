package cf

import (
	"math"
	"testing"
)

// testRate is a deterministic saturating cap→rate law shaped like a
// real server's utility curve.
func testRate(capW float64) float64 {
	return 120 * (1 - math.Exp(-capW/150))
}

func testEstimator(t *testing.T, cfg OnlineConfig) *OnlineEstimator {
	t.Helper()
	e, err := NewOnlineEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestOnlineEstimatorConvergesToTable drives the probe loop to full
// coverage and checks the converged curve is bit-identical to the
// oracle built from the same observations — the property the mixed
// fleet parity drill depends on.
func TestOnlineEstimatorConvergesToTable(t *testing.T) {
	cfg := OnlineConfig{FloorW: 45, NameplateW: 95, StepW: 10, Seed: 3}
	e := testEstimator(t, cfg)
	grid := e.Grid()
	if len(grid) != 6 || grid[len(grid)-1] != 95 {
		t.Fatalf("grid %v, want 6 cells ending at the nameplate", grid)
	}
	const grant = 95.0
	for i := 0; i < 200 && !e.Converged(); i++ {
		cap := e.ProbeCap(grant)
		if cap > grant {
			t.Fatalf("probe %g W exceeds grant %g W", cap, grant)
		}
		if !e.Observe(cap, testRate(cap)) {
			t.Fatalf("on-grid observation at %g W rejected", cap)
		}
	}
	if !e.Converged() {
		t.Fatal("estimator did not converge in 200 probed intervals")
	}
	if c := e.Confidence(); c != 1 {
		t.Fatalf("converged confidence %g, want exactly 1", c)
	}
	if got := e.ProbeCap(grant); got != grant {
		t.Fatalf("converged probe self-capped to %g W, want the full grant", got)
	}
	rates := make([]float64, len(grid))
	for j, c := range grid {
		rates[j] = testRate(c)
	}
	want := CurveFromRates(grid, rates)
	got, ok := e.Curve()
	if !ok || len(got) != len(want) {
		t.Fatalf("curve %v, want %d points", got, len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("point %d: %+v, oracle %+v", j, got[j], want[j])
		}
	}
}

// TestOnlineEstimatorFill checks both fill paths on a half-observed
// grid: the RLS basis fit alone, and the factorization fill with a
// reference row, must both land within a loose relative error of the
// true rates — close enough for the DP to rank caps sensibly.
func TestOnlineEstimatorFill(t *testing.T) {
	grid := CapGrid(45, 305, 20)
	ref := make([]float64, len(grid))
	for j, c := range grid {
		ref[j] = 0.9 * testRate(c) // a similar, previously-seen server
	}
	for _, tc := range []struct {
		name string
		refs [][]float64
		tol  float64
	}{
		{"rls-only", nil, 0.25},
		{"cf-fill", [][]float64{ref}, 0.25},
	} {
		e := testEstimator(t, OnlineConfig{FloorW: 45, NameplateW: 305, StepW: 20, Seed: 9, Reference: tc.refs})
		// Every other cell plus the anchor, as SampleCols would pick.
		for j, c := range grid {
			if j%2 == 0 || j == len(grid)-1 {
				e.Observe(c, testRate(c))
			}
		}
		curve, ok := e.Curve()
		if !ok {
			t.Fatalf("%s: no curve from a half-observed grid", tc.name)
		}
		for j, c := range grid {
			wantPerf := testRate(c) / testRate(grid[len(grid)-1])
			if relErr := math.Abs(curve[j].Perf-wantPerf) / wantPerf; relErr > tc.tol {
				t.Errorf("%s: cell %d (%g W): perf %.4f, true %.4f (rel err %.2f)",
					tc.name, j, c, curve[j].Perf, wantPerf, relErr)
			}
		}
		// Observed cells stay exact regardless of the fill (the anchor
		// is measured, so normalization divides by a true rate).
		for j := 0; j < len(grid); j += 2 {
			want := testRate(grid[j]) / testRate(grid[len(grid)-1])
			if curve[j].Perf != want {
				t.Errorf("%s: measured cell %d perf %v, want exact %v", tc.name, j, curve[j].Perf, want)
			}
		}
	}
}

// TestOnlineEstimatorRejectsOffGrid pins the sampling discipline: only
// on-grid caps and positive finite rates become cells.
func TestOnlineEstimatorRejectsOffGrid(t *testing.T) {
	e := testEstimator(t, OnlineConfig{FloorW: 45, NameplateW: 95, StepW: 10})
	for _, bad := range []struct{ cap, rate float64 }{
		{50.7, 10}, {55, 0}, {55, -1}, {55, math.Inf(1)}, {55, math.NaN()},
	} {
		if e.Observe(bad.cap, bad.rate) {
			t.Fatalf("observation (%g W, %g Hz) accepted", bad.cap, bad.rate)
		}
	}
	if e.ObservedCells() != 0 {
		t.Fatalf("%d cells observed after only rejected samples", e.ObservedCells())
	}
	if _, ok := e.Curve(); ok {
		t.Fatal("curve produced with zero observations")
	}
	// A grant below the grid floor is enforced as granted, never raised.
	if got := e.ProbeCap(30); got != 30 {
		t.Fatalf("sub-floor grant probed to %g W, want 30", got)
	}
}

// TestOnlineEstimatorDeterministic: same seed, same observation
// schedule, same probes and curve — the scenario engine's replay
// guarantee extends through the learner.
func TestOnlineEstimatorDeterministic(t *testing.T) {
	run := func() ([]float64, []float64) {
		e := testEstimator(t, OnlineConfig{FloorW: 45, NameplateW: 205, StepW: 20, Seed: 11})
		var probes []float64
		for i := 0; i < 40; i++ {
			c := e.ProbeCap(180)
			probes = append(probes, c)
			e.Observe(c, testRate(c))
		}
		curve, _ := e.Curve()
		var perfs []float64
		for _, p := range curve {
			perfs = append(perfs, p.Perf)
		}
		return probes, perfs
	}
	p1, c1 := run()
	p2, c2 := run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("probe %d differs across identical runs: %g vs %g", i, p1[i], p2[i])
		}
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("curve point %d differs across identical runs: %g vs %g", i, c1[i], c2[i])
		}
	}
}
