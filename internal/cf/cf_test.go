package cf

import (
	"math"
	"math/rand"
	"testing"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

func smallModel() ModelConfig {
	return ModelConfig{Factors: 4, Epochs: 80, LearnRate: 0.03, Reg: 0.01, Seed: 1}
}

func TestFitValidation(t *testing.T) {
	obs := []Observation{{Row: 0, Col: 0, Value: 1}}
	if _, err := Fit(0, 1, obs, smallModel()); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := Fit(1, 1, nil, smallModel()); err == nil {
		t.Error("no observations accepted")
	}
	if _, err := Fit(1, 1, []Observation{{Row: 2, Col: 0, Value: 1}}, smallModel()); err == nil {
		t.Error("out-of-range observation accepted")
	}
	if _, err := Fit(1, 1, []Observation{{Row: 0, Col: 0, Value: math.NaN()}}, smallModel()); err == nil {
		t.Error("NaN observation accepted")
	}
	bad := smallModel()
	bad.Factors = 0
	if _, err := Fit(1, 1, obs, bad); err == nil {
		t.Error("zero factors accepted")
	}
}

// syntheticLowRank builds a rows x cols rank-2 matrix with biases.
func syntheticLowRank(rows, cols int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	u := make([][2]float64, rows)
	v := make([][2]float64, cols)
	rb := make([]float64, rows)
	cb := make([]float64, cols)
	for i := range u {
		u[i] = [2]float64{rng.NormFloat64(), rng.NormFloat64()}
		rb[i] = rng.NormFloat64()
	}
	for j := range v {
		v[j] = [2]float64{rng.NormFloat64(), rng.NormFloat64()}
		cb[j] = rng.NormFloat64()
	}
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = 5 + rb[i] + cb[j] + u[i][0]*v[j][0] + u[i][1]*v[j][1]
		}
	}
	return m
}

func TestFitRecoversLowRankMatrix(t *testing.T) {
	const rows, cols = 12, 60
	m := syntheticLowRank(rows, cols, 9)
	rng := rand.New(rand.NewSource(10))
	var train, test []Observation
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			o := Observation{Row: i, Col: j, Value: m[i][j]}
			if rng.Float64() < 0.6 {
				train = append(train, o)
			} else {
				test = append(test, o)
			}
		}
	}
	cfg := ModelConfig{Factors: 4, Epochs: 300, LearnRate: 0.02, Reg: 0.005, Seed: 2}
	model, err := Fit(rows, cols, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rmse := model.RMSE(test); rmse > 0.35 {
		t.Errorf("held-out RMSE = %g on a rank-2 matrix, want < 0.35", rmse)
	}
	if model.RMSE(nil) != 0 {
		t.Error("RMSE of no observations should be 0")
	}
}

func TestFitDeterministicForSeed(t *testing.T) {
	m := syntheticLowRank(6, 30, 3)
	var obs []Observation
	for i := range m {
		for j := range m[i] {
			obs = append(obs, Observation{Row: i, Col: j, Value: m[i][j]})
		}
	}
	a, err := Fit(6, 30, obs, smallModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(6, 30, obs, smallModel())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 30; j++ {
			if a.Predict(i, j) != b.Predict(i, j) {
				t.Fatalf("same seed produced different predictions at (%d, %d)", i, j)
			}
		}
	}
}

func buildTestDataset(t *testing.T) (*Dataset, *workload.Library, simhw.Config) {
	t.Helper()
	cfg := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := BuildDataset(cfg, lib)
	if err != nil {
		t.Fatal(err)
	}
	return ds, lib, cfg
}

func TestDatasetShape(t *testing.T) {
	ds, lib, cfg := buildTestDataset(t)
	if len(ds.Rows) != len(lib.Apps()) {
		t.Fatalf("dataset has %d rows, want %d", len(ds.Rows), len(lib.Apps()))
	}
	if want := len(workload.EnumKnobs(cfg, cfg.CoresPerSocket)); len(ds.Cols) != want {
		t.Fatalf("dataset has %d columns, want %d", len(ds.Cols), want)
	}
	for i := range ds.Rows {
		if len(ds.PowerW[i]) != len(ds.Cols) || len(ds.LogRate[i]) != len(ds.Cols) {
			t.Fatalf("row %d has ragged data", i)
		}
	}
}

func TestSampleColsProperties(t *testing.T) {
	ds, _, _ := buildTestDataset(t)
	s := ds.SampleCols(0.1, 42)
	want := int(math.Ceil(0.1 * float64(len(ds.Cols))))
	if len(s) != want {
		t.Fatalf("sampled %d columns, want %d", len(s), want)
	}
	// The anchor (max setting) is always included.
	found := false
	seen := make(map[int]bool)
	for _, j := range s {
		if j == len(ds.Cols)-1 {
			found = true
		}
		if seen[j] {
			t.Fatalf("duplicate sample %d", j)
		}
		seen[j] = true
	}
	if !found {
		t.Error("anchor column not sampled")
	}
	// Deterministic for a seed.
	s2 := ds.SampleCols(0.1, 42)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	// A tiny fraction still yields at least two samples.
	if got := ds.SampleCols(0.0001, 1); len(got) < 2 {
		t.Errorf("tiny fraction sampled %d columns, want >= 2", len(got))
	}
}

func TestEstimateKeepsMeasuredCellsExact(t *testing.T) {
	ds, lib, cfg := buildTestDataset(t)
	target := lib.MustApp("BFS")
	ti := indexOf(ds.Rows, "BFS")
	var train []int
	for i := range ds.Rows {
		if i != ti {
			train = append(train, i)
		}
	}
	sampled := ds.SampleCols(0.1, 5)
	est, err := ds.EstimateApp(train, sampled,
		func(j int) float64 { return target.Power(cfg, ds.Cols[j]) },
		func(j int) float64 { return target.Rate(cfg, ds.Cols[j]) },
		smallModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range sampled {
		if !est.Measured(j) {
			t.Fatalf("sampled column %d not marked measured", j)
		}
		if est.PowerW(j) != target.Power(cfg, ds.Cols[j]) {
			t.Fatalf("measured power at %d was altered", j)
		}
		if est.Rate(j) != target.Rate(cfg, ds.Cols[j]) {
			t.Fatalf("measured rate at %d was altered", j)
		}
	}
}

func TestEstimateAccuracyAtTenPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("CF training is slow")
	}
	ds, lib, cfg := buildTestDataset(t)
	target := lib.MustApp("facesim")
	ti := indexOf(ds.Rows, "facesim")
	var train []int
	for i := range ds.Rows {
		if i != ti {
			train = append(train, i)
		}
	}
	sampled := ds.SampleCols(0.10, 7)
	est, err := ds.EstimateApp(train, sampled,
		func(j int) float64 { return target.Power(cfg, ds.Cols[j]) },
		func(j int) float64 { return target.Rate(cfg, ds.Cols[j]) },
		DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sqPow, sqRate float64
	n := 0
	for j := range ds.Cols {
		if est.Measured(j) {
			continue
		}
		dp := est.PowerW(j) - target.Power(cfg, ds.Cols[j])
		dr := (est.Rate(j) - target.Rate(cfg, ds.Cols[j])) / target.Rate(cfg, ds.Cols[j])
		sqPow += dp * dp
		sqRate += dr * dr
		n++
	}
	if rmse := math.Sqrt(sqPow / float64(n)); rmse > 1.0 {
		t.Errorf("power RMSE at 10%% sampling = %.2f W, want < 1 W", rmse)
	}
	if rmse := math.Sqrt(sqRate / float64(n)); rmse > 0.08 {
		t.Errorf("rate relative RMSE at 10%% sampling = %.3f, want < 8%%", rmse)
	}
}

func TestEstimateValidation(t *testing.T) {
	ds, _, _ := buildTestDataset(t)
	if _, err := ds.EstimateApp(nil, nil, nil, nil, smallModel()); err == nil {
		t.Error("estimate without samples accepted")
	}
	if _, err := ds.EstimateApp(nil, []int{-1},
		func(int) float64 { return 1 },
		func(int) float64 { return 1 }, smallModel()); err == nil {
		t.Error("negative sample column accepted")
	}
	if _, err := ds.EstimateApp(nil, []int{0},
		func(int) float64 { return 1 },
		func(int) float64 { return 0 }, smallModel()); err == nil {
		t.Error("non-positive measured rate accepted")
	}
}

func TestEstimatedCurveIsUsable(t *testing.T) {
	ds, lib, cfg := buildTestDataset(t)
	target := lib.MustApp("kmeans")
	ti := indexOf(ds.Rows, "kmeans")
	var train []int
	for i := range ds.Rows {
		if i != ti {
			train = append(train, i)
		}
	}
	sampled := ds.SampleCols(0.10, 11)
	est, err := ds.EstimateApp(train, sampled,
		func(j int) float64 { return target.Power(cfg, ds.Cols[j]) },
		func(j int) float64 { return target.Rate(cfg, ds.Cols[j]) },
		smallModel())
	if err != nil {
		t.Fatal(err)
	}
	curve := est.Curve(target.MaxCores)
	if curve.Len() == 0 {
		t.Fatal("estimated curve is empty")
	}
	pt, ok := curve.At(15)
	if !ok {
		t.Fatal("estimated curve unrunnable at 15 W")
	}
	// The believed point must be near-feasible in reality.
	truePower := target.Power(cfg, pt.Knobs) * pt.DutyFrac
	if truePower > 15*1.25 {
		t.Errorf("estimated 15 W point truly draws %.1f W", truePower)
	}
	// The anchor normalization keeps perf near [0, 1].
	if pt.Perf < 0 || pt.Perf > 1.2 {
		t.Errorf("estimated perf %g out of range", pt.Perf)
	}
}

func indexOf(rows []string, name string) int {
	for i, r := range rows {
		if r == name {
			return i
		}
	}
	return -1
}
