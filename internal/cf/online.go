// Online utility learning: a live server cannot be profiled offline
// like a trace mix, so the estimator here learns its cap→heartbeat-rate
// curve from the samples the control loop produces anyway — one
// (enforced cap, observed rate) pair per interval — and fills the cells
// the loop has not yet visited with recursive least-squares over a
// small basis plus the package's matrix factorization over reference
// rows, as the paper's CF learner prescribes for new applications.
package cf

import (
	"fmt"
	"math"
	"math/rand"

	"powerstruggle/internal/cluster"
)

// DefaultProbeEpsilon is the exploration rate of the epsilon-greedy
// probe: the fraction of intervals an unconverged estimator self-caps
// to an unsampled cell instead of exploiting the full grant.
const DefaultProbeEpsilon = 0.2

// CapGrid samples the learnable cap levels: floorW upward in stepW
// strides, with the nameplate as the final cell. The grid is strictly
// increasing, so curves built on it pass wire validation.
func CapGrid(floorW, nameplateW, stepW float64) []float64 {
	if stepW <= 0 || nameplateW < floorW || floorW < 0 {
		return nil
	}
	var out []float64
	for c := floorW; c < nameplateW; c += stepW {
		out = append(out, c)
	}
	return append(out, nameplateW)
}

// CurveFromRates builds the cap-utility curve a fully-converged
// estimator reports: performance normalized to the rate at the top
// cell, grid draw taken as the cap itself (the estimator observes
// heartbeats, not meters). Tests construct oracle curves through this
// same helper so a converged learner matches them bit for bit.
func CurveFromRates(grid, rates []float64) []cluster.CapPoint {
	if len(grid) != len(rates) || len(grid) == 0 {
		return nil
	}
	anchor := rates[len(rates)-1]
	if !(anchor > 0) {
		return nil
	}
	out := make([]cluster.CapPoint, len(grid))
	for j := range grid {
		out[j] = cluster.CapPoint{CapW: grid[j], Perf: rates[j] / anchor, GridW: grid[j]}
	}
	return out
}

// OnlineConfig parameterizes an OnlineEstimator.
type OnlineConfig struct {
	// FloorW and NameplateW bound the cap grid (the server's idle floor
	// and nameplate draw).
	FloorW, NameplateW float64
	// StepW is the grid stride; 0 means cluster.ServerCapStepW, which
	// keeps learned curves on the apportioning DP's own grid.
	StepW float64
	// Epsilon is the probe's exploration rate; 0 means
	// DefaultProbeEpsilon.
	Epsilon float64
	// MinSamples is how often every cell must be observed before the
	// estimator declares convergence and stops probing; 0 means 1.
	MinSamples int
	// Seed fixes the probe's random source.
	Seed int64
	// Reference optionally carries heartbeat-rate rows of previously
	// characterized servers on this same grid; when present, unsampled
	// cells are filled by matrix factorization over them (EstimateApp's
	// online path for whole servers). Without references the RLS basis
	// fit extrapolates alone.
	Reference [][]float64
	// Model configures the factorization; zero means
	// DefaultModelConfig().
	Model ModelConfig
}

// rlsDim is the basis size: [1, x, x^2, sqrt(x)] over the normalized
// cap position — enough to bend like a cap-utility curve, small enough
// to converge from a handful of intervals.
const rlsDim = 4

// OnlineEstimator learns one server's cap→rate curve online. Not safe
// for concurrent use; callers (agent tick, daemon control state) hold
// their own locks.
type OnlineEstimator struct {
	cfg  OnlineConfig
	grid []float64
	// Per-cell empirical state. mean is a running mean, which for a
	// deterministic workload repeatedly observed at the same cell stays
	// bitwise equal to the observed value — the property the mixed
	// fleet parity drill leans on.
	mean  []float64
	count []int
	rng   *rand.Rand

	// Recursive least squares over the basis, in log-rate space.
	w   [rlsDim]float64
	p   [rlsDim][rlsDim]float64
	nrm float64 // 1/(nameplate-floor), 0 when the grid is a single cell
	obs int     // total accepted observations

	// Curve cache: the CF/RLS fill is only recomputed after new
	// observations arrive.
	dirty bool
	curve []cluster.CapPoint
}

// NewOnlineEstimator validates the config and builds the estimator.
func NewOnlineEstimator(cfg OnlineConfig) (*OnlineEstimator, error) {
	if cfg.StepW == 0 {
		cfg.StepW = cluster.ServerCapStepW
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = DefaultProbeEpsilon
	}
	if cfg.Epsilon < 0 || cfg.Epsilon > 1 {
		return nil, fmt.Errorf("cf: probe epsilon %g outside [0, 1]", cfg.Epsilon)
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 1
	}
	if cfg.Model.Factors == 0 {
		cfg.Model = DefaultModelConfig()
	}
	grid := CapGrid(cfg.FloorW, cfg.NameplateW, cfg.StepW)
	if len(grid) == 0 {
		return nil, fmt.Errorf("cf: unlearnable cap grid [%g, %g] step %g", cfg.FloorW, cfg.NameplateW, cfg.StepW)
	}
	for _, row := range cfg.Reference {
		if len(row) != len(grid) {
			return nil, fmt.Errorf("cf: reference row has %d cells, grid has %d", len(row), len(grid))
		}
	}
	e := &OnlineEstimator{
		cfg:   cfg,
		grid:  grid,
		mean:  make([]float64, len(grid)),
		count: make([]int, len(grid)),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if span := cfg.NameplateW - cfg.FloorW; span > 0 {
		e.nrm = 1 / span
	}
	for i := 0; i < rlsDim; i++ {
		e.p[i][i] = 1e3 // diffuse prior
	}
	return e, nil
}

// Grid returns the cap levels the estimator samples.
func (e *OnlineEstimator) Grid() []float64 { return e.grid }

// cellOf maps an enforced cap to its grid cell, or -1 when the cap is
// off-grid (an even-share split, say) and the sample would smear a
// neighboring cell's statistics.
func (e *OnlineEstimator) cellOf(capW float64) int {
	for j, c := range e.grid {
		if math.Abs(capW-c) < 1e-9 {
			return j
		}
	}
	return -1
}

// basis evaluates the RLS features at a cap.
func (e *OnlineEstimator) basis(capW float64) [rlsDim]float64 {
	x := (capW - e.cfg.FloorW) * e.nrm
	return [rlsDim]float64{1, x, x * x, math.Sqrt(math.Max(0, x))}
}

// Observe records one (enforced cap, heartbeat rate) sample. Samples
// off the grid or with non-positive rates are dropped; the return
// reports whether the sample was accepted.
func (e *OnlineEstimator) Observe(capW, rateHz float64) bool {
	j := e.cellOf(capW)
	if j < 0 || !(rateHz > 0) || math.IsInf(rateHz, 0) {
		return false
	}
	e.count[j]++
	e.mean[j] += (rateHz - e.mean[j]) / float64(e.count[j])
	// RLS update in log space (rates vary multiplicatively).
	phi := e.basis(capW)
	y := math.Log(rateHz)
	var pphi [rlsDim]float64
	for i := 0; i < rlsDim; i++ {
		for k := 0; k < rlsDim; k++ {
			pphi[i] += e.p[i][k] * phi[k]
		}
	}
	denom := 1.0
	for i := 0; i < rlsDim; i++ {
		denom += phi[i] * pphi[i]
	}
	pred := 0.0
	for i := 0; i < rlsDim; i++ {
		pred += e.w[i] * phi[i]
	}
	err := y - pred
	for i := 0; i < rlsDim; i++ {
		e.w[i] += pphi[i] / denom * err
	}
	var newP [rlsDim][rlsDim]float64
	for i := 0; i < rlsDim; i++ {
		for k := 0; k < rlsDim; k++ {
			newP[i][k] = e.p[i][k] - pphi[i]*pphi[k]/denom
		}
	}
	e.p = newP
	e.obs++
	e.dirty = true
	return true
}

// ObservedCells counts grid cells with at least one sample.
func (e *OnlineEstimator) ObservedCells() int {
	n := 0
	for _, c := range e.count {
		if c > 0 {
			n++
		}
	}
	return n
}

// Confidence is the coverage fraction the daemon reports with its
// learned curve: observed cells over total cells, 1.0 exactly at full
// coverage.
func (e *OnlineEstimator) Confidence() float64 {
	if len(e.grid) == 0 {
		return 0
	}
	if e.Converged() {
		return 1
	}
	return float64(e.ObservedCells()) / float64(len(e.grid))
}

// Converged reports whether every cell has MinSamples samples; a
// converged estimator stops probing and reports the empirical table
// verbatim.
func (e *OnlineEstimator) Converged() bool {
	for _, c := range e.count {
		if c < e.cfg.MinSamples {
			return false
		}
	}
	return true
}

// ProbeCap chooses the cap to actually enforce this interval given a
// grant: converged estimators exploit the full grant; learning ones
// self-cap with probability epsilon to the least-sampled reachable
// cell, and otherwise to the highest grid cell the grant covers so the
// exploiting interval still yields a usable sample. A probe never
// exceeds the grant, so the cluster cap holds while curves are
// partial.
func (e *OnlineEstimator) ProbeCap(grantedW float64) float64 {
	if e.Converged() || grantedW < e.grid[0] {
		return grantedW
	}
	hi := 0
	for j, c := range e.grid {
		if c <= grantedW+1e-9 {
			hi = j
		}
	}
	if e.rng.Float64() < e.cfg.Epsilon {
		// Least-sampled reachable cell, lowest index on ties.
		best := 0
		for j := 1; j <= hi; j++ {
			if e.count[j] < e.count[best] {
				best = j
			}
		}
		return e.grid[best]
	}
	return e.grid[hi]
}

// Curve returns the learned cap-utility curve and whether one exists
// yet (at least one observed cell). Observed cells carry their
// empirical means; unobserved ones are filled by matrix factorization
// over the reference rows when available, by the RLS fit once it has
// seen enough samples, and by the nearest observed neighbor before
// that. Predicted cells are clamped monotone so a noisy fill cannot
// fake a utility cliff.
func (e *OnlineEstimator) Curve() ([]cluster.CapPoint, bool) {
	if e.ObservedCells() == 0 {
		return nil, false
	}
	if !e.dirty && e.curve != nil {
		return e.curve, true
	}
	rates := make([]float64, len(e.grid))
	predicted := make([]bool, len(e.grid))
	fill := e.cfFill() // one factorization per rebuild, nil without references
	for j := range e.grid {
		if e.count[j] > 0 {
			rates[j] = e.mean[j]
		} else {
			rates[j] = e.fillCell(j, fill)
			predicted[j] = true
		}
	}
	// Monotone clamp on predicted cells only: measurements are truth,
	// predictions may not undercut the best measured/predicted rate at
	// a lower cap.
	run := math.Inf(-1)
	for j := range rates {
		if predicted[j] && rates[j] < run {
			rates[j] = run
		}
		run = rates[j]
	}
	e.curve = CurveFromRates(e.grid, rates)
	e.dirty = false
	return e.curve, e.curve != nil
}

// fillCell predicts one unobserved cell's rate, preferring the
// factorization fill, then the RLS fit, then the nearest observed
// neighbor.
func (e *OnlineEstimator) fillCell(j int, fill []float64) float64 {
	if fill != nil {
		return fill[j]
	}
	if e.obs >= rlsDim {
		phi := e.basis(e.grid[j])
		y := 0.0
		for i := 0; i < rlsDim; i++ {
			y += e.w[i] * phi[i]
		}
		return math.Exp(y)
	}
	// Too few samples for either model: nearest observed neighbor.
	bestD, bestV := math.MaxInt, 0.0
	for k := range e.grid {
		if e.count[k] == 0 {
			continue
		}
		if d := abs(k - j); d < bestD {
			bestD, bestV = d, e.mean[k]
		}
	}
	return bestV
}

// cfFill completes the whole row by matrix factorization — reference
// rows plus this server's observed cells, in log space, exactly as
// EstimateApp fills a new application's row — and returns the
// predicted rate per cell, or nil when no references are configured or
// the factorization cannot run.
func (e *OnlineEstimator) cfFill() []float64 {
	nRef := len(e.cfg.Reference)
	if nRef == 0 {
		return nil
	}
	var obs []Observation
	for r, row := range e.cfg.Reference {
		for c, v := range row {
			if !(v > 0) {
				return nil
			}
			obs = append(obs, Observation{Row: r, Col: c, Value: math.Log(v)})
		}
	}
	for c := range e.grid {
		if e.count[c] > 0 && e.mean[c] > 0 {
			obs = append(obs, Observation{Row: nRef, Col: c, Value: math.Log(e.mean[c])})
		}
	}
	m, err := Fit(nRef+1, len(e.grid), obs, e.cfg.Model)
	if err != nil {
		return nil
	}
	out := make([]float64, len(e.grid))
	for j := range out {
		out[j] = math.Exp(m.Predict(nRef, j))
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
