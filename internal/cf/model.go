// Package cf implements the paper's online utility learning (Section
// III-A): the power and performance of an application at every (f, n, m)
// knob setting are estimated from a few online samples by collaborative
// filtering against previously-seen applications, exactly as a
// recommender predicts a new user's preferences from the population.
//
// The estimator is a biased matrix factorization (global mean + row and
// column biases + latent factors) trained by SGD on the observed cells —
// the de-facto standard model the paper's R implementation provides. Two
// independent models are fit, one for power draw (watts, linear space)
// and one for heartbeat rate (log space, since rates vary multiplicatively
// across applications).
package cf

import (
	"fmt"
	"math"
	"math/rand"
)

// Observation is one measured cell of the application x knob-setting
// matrix.
type Observation struct {
	Row, Col int
	Value    float64
}

// ModelConfig holds the matrix-factorization hyperparameters.
type ModelConfig struct {
	// Factors is the latent dimension.
	Factors int
	// Epochs is the number of SGD sweeps over the observations.
	Epochs int
	// LearnRate is the SGD step size.
	LearnRate float64
	// Reg is the L2 regularization weight on biases and factors.
	Reg float64
	// Seed makes training deterministic.
	Seed int64
}

// DefaultModelConfig returns hyperparameters that reconstruct the paper's
// utility matrices well at 10% sampling.
func DefaultModelConfig() ModelConfig {
	return ModelConfig{Factors: 6, Epochs: 220, LearnRate: 0.02, Reg: 0.015, Seed: 1}
}

// Model is a trained biased matrix factorization.
type Model struct {
	mu       float64
	rowBias  []float64
	colBias  []float64
	rowFac   [][]float64
	colFac   [][]float64
	nFactors int
}

// Fit trains a model for a rows x cols matrix from the observed cells.
func Fit(rows, cols int, obs []Observation, cfg ModelConfig) (*Model, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("cf: matrix %dx%d is invalid", rows, cols)
	}
	if len(obs) == 0 {
		return nil, fmt.Errorf("cf: no observations")
	}
	if cfg.Factors <= 0 || cfg.Epochs <= 0 || cfg.LearnRate <= 0 {
		return nil, fmt.Errorf("cf: invalid hyperparameters %+v", cfg)
	}
	for _, o := range obs {
		if o.Row < 0 || o.Row >= rows || o.Col < 0 || o.Col >= cols {
			return nil, fmt.Errorf("cf: observation (%d, %d) outside %dx%d", o.Row, o.Col, rows, cols)
		}
		if math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
			return nil, fmt.Errorf("cf: observation (%d, %d) is not finite", o.Row, o.Col)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		rowBias:  make([]float64, rows),
		colBias:  make([]float64, cols),
		rowFac:   make([][]float64, rows),
		colFac:   make([][]float64, cols),
		nFactors: cfg.Factors,
	}
	const initScale = 0.05
	for i := range m.rowFac {
		m.rowFac[i] = make([]float64, cfg.Factors)
		for f := range m.rowFac[i] {
			m.rowFac[i][f] = initScale * (rng.Float64() - 0.5)
		}
	}
	for j := range m.colFac {
		m.colFac[j] = make([]float64, cfg.Factors)
		for f := range m.colFac[j] {
			m.colFac[j][f] = initScale * (rng.Float64() - 0.5)
		}
	}
	for _, o := range obs {
		m.mu += o.Value
	}
	m.mu /= float64(len(obs))

	order := rng.Perm(len(obs))
	lr, reg := cfg.LearnRate, cfg.Reg
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			o := obs[idx]
			pred := m.Predict(o.Row, o.Col)
			err := o.Value - pred
			rb, cb := m.rowBias[o.Row], m.colBias[o.Col]
			m.rowBias[o.Row] += lr * (err - reg*rb)
			m.colBias[o.Col] += lr * (err - reg*cb)
			rf, cfv := m.rowFac[o.Row], m.colFac[o.Col]
			for f := 0; f < cfg.Factors; f++ {
				ru, cv := rf[f], cfv[f]
				rf[f] += lr * (err*cv - reg*ru)
				cfv[f] += lr * (err*ru - reg*cv)
			}
		}
	}
	return m, nil
}

// Predict returns the model's estimate for cell (row, col).
func (m *Model) Predict(row, col int) float64 {
	v := m.mu + m.rowBias[row] + m.colBias[col]
	rf, cf := m.rowFac[row], m.colFac[col]
	for f := 0; f < m.nFactors; f++ {
		v += rf[f] * cf[f]
	}
	return v
}

// RMSE returns the root-mean-square error of the model on a set of
// held-out cells.
func (m *Model) RMSE(obs []Observation) float64 {
	if len(obs) == 0 {
		return 0
	}
	var sum float64
	for _, o := range obs {
		d := o.Value - m.Predict(o.Row, o.Col)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(obs)))
}
