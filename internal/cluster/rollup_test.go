package cluster

import (
	"math"
	"testing"
)

// lineCurve samples a linear utility curve from floorW upward: point k
// caps at floorW + k*ServerCapStepW and yields perf proportional to
// the watts above the floor, saturating at points points.
func lineCurve(floorW float64, points int, perfPerW float64) []CapPoint {
	out := make([]CapPoint, points)
	for k := range out {
		w := floorW + float64(k)*ServerCapStepW
		out[k] = CapPoint{CapW: w, Perf: float64(k) * ServerCapStepW * perfPerW, GridW: w}
	}
	return out
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// The rollup must agree with the flat DP: apportioning capW across the
// members directly and granting the shard capW against its rollup must
// deliver the same summed performance, because the rollup IS the flat
// DP's forward table.
func TestRollupMatchesFlatDP(t *testing.T) {
	floor := 40.0
	curves := [][]CapPoint{
		lineCurve(floor, 6, 0.010),
		lineCurve(floor, 9, 0.004),
		lineCurve(floor, 4, 0.020),
	}
	roll := RollupCurves(floor, curves)
	if roll == nil {
		t.Fatal("rollup of non-empty curves returned nil")
	}
	wantLevels := 1 + 5 + 8 + 3
	if len(roll) != wantLevels {
		t.Fatalf("rollup has %d points, want %d", len(roll), wantLevels)
	}
	if roll[0].CapW != floor*3 {
		t.Fatalf("rollup floor point caps at %g W, want %g", roll[0].CapW, floor*3)
	}
	for l := 0; l < len(roll); l++ {
		capW := roll[l].CapW
		_, flatPerf, _ := ApportionCurves(capW, floor, curves)
		if math.Abs(roll[l].Perf-flatPerf) > 1e-9 {
			t.Fatalf("rollup perf at %g W is %g, flat DP gives %g", capW, roll[l].Perf, flatPerf)
		}
		if l > 0 {
			if roll[l].CapW <= roll[l-1].CapW {
				t.Fatalf("rollup caps not strictly increasing at %d", l)
			}
			if roll[l].Perf < roll[l-1].Perf {
				t.Fatalf("rollup perf decreasing at %d", l)
			}
		}
	}
}

func TestRollupRejectsEmptyMemberCurve(t *testing.T) {
	if got := RollupCurves(40, nil); got != nil {
		t.Fatalf("rollup of no curves = %v, want nil", got)
	}
	curves := [][]CapPoint{lineCurve(40, 4, 0.01), nil}
	if got := RollupCurves(40, curves); got != nil {
		t.Fatalf("rollup with a curveless member = %v, want nil", got)
	}
}

func TestDownsampleCurveKeepsEndpoints(t *testing.T) {
	curve := lineCurve(40, 100, 0.01)
	thin := DownsampleCurve(curve, 8)
	if len(thin) != 8 {
		t.Fatalf("downsampled to %d points, want 8", len(thin))
	}
	if thin[0] != curve[0] || thin[len(thin)-1] != curve[len(curve)-1] {
		t.Fatal("downsample dropped an endpoint")
	}
	for i := 1; i < len(thin); i++ {
		if thin[i].CapW <= thin[i-1].CapW {
			t.Fatalf("downsampled caps not strictly increasing at %d", i)
		}
	}
	if got := DownsampleCurve(curve, 200); len(got) != len(curve) {
		t.Fatalf("downsample above length changed the curve: %d points", len(got))
	}
}

func TestApportionShardsRespectsCap(t *testing.T) {
	shards := []ShardCurve{
		{FloorW: 120, Points: lineCurve(40, 20, 0.010)}, // steep: wants the watts
		{FloorW: 120, Points: lineCurve(40, 20, 0.002)}, // shallow
		{FloorW: 120, Points: lineCurve(40, 20, 0.006)},
	}
	for _, capW := range []float64{121, 150, 200, 500} {
		budgets, perf := ApportionShards(capW, shards, 0)
		if got := sum(budgets); got > capW+1e-6 {
			t.Fatalf("cap %g: budgets sum to %g", capW, got)
		}
		if perf < 0 {
			t.Fatalf("cap %g: negative perf %g", capW, perf)
		}
	}
	// With spare watts, the steepest shard must out-earn the shallowest.
	budgets, _ := ApportionShards(200, shards, 0)
	if budgets[0] <= budgets[1] {
		t.Fatalf("steep shard got %g W, shallow got %g W", budgets[0], budgets[1])
	}
}

// A coarsened grid must still never exceed the cap, and must lose only
// resolution, not safety.
func TestApportionShardsCoarseGrid(t *testing.T) {
	shards := []ShardCurve{
		{FloorW: 40, Points: lineCurve(40, 200, 0.010)},
		{FloorW: 40, Points: lineCurve(40, 200, 0.004)},
		{FloorW: 40, Points: lineCurve(40, 200, 0.007)},
		{FloorW: 40, Points: lineCurve(40, 200, 0.001)},
	}
	capW := 900.0
	fine, finePerf := ApportionShards(capW, shards, 0)
	coarse, coarsePerf := ApportionShards(capW, shards, 16)
	if got := sum(coarse); got > capW+1e-6 {
		t.Fatalf("coarse budgets sum to %g over cap %g", got, capW)
	}
	if got := sum(fine); got > capW+1e-6 {
		t.Fatalf("fine budgets sum to %g over cap %g", got, capW)
	}
	if coarsePerf > finePerf+1e-9 {
		t.Fatalf("coarse grid outperforms fine grid: %g > %g", coarsePerf, finePerf)
	}
	// The coarse solve must still find most of the utility.
	if coarsePerf < 0.8*finePerf {
		t.Fatalf("coarse grid lost too much: %g vs %g", coarsePerf, finePerf)
	}
}

// Satellite edge case: a shard with an empty aggregate curve (its
// members are curveless live daemons) falls back to an even share of
// the cluster cap, exactly like the flat coordinator's curveless
// members.
func TestApportionShardsEmptyCurveEvenShare(t *testing.T) {
	shards := []ShardCurve{
		{FloorW: 40, Points: lineCurve(40, 10, 0.01)},
		{FloorW: 40, Points: nil}, // curveless daemons
		{FloorW: 40, Points: lineCurve(40, 10, 0.01)},
	}
	capW := 300.0
	budgets, _ := ApportionShards(capW, shards, 0)
	if want := capW / 3; math.Abs(budgets[1]-want) > 1e-9 {
		t.Fatalf("curveless shard got %g W, want even share %g", budgets[1], want)
	}
	if got := sum(budgets); got > capW+1e-6 {
		t.Fatalf("budgets sum to %g over cap %g", got, capW)
	}
	// All shards curveless: pure even split.
	all := []ShardCurve{{FloorW: 40}, {FloorW: 40}}
	budgets, perf := ApportionShards(100, all, 0)
	if budgets[0] != 50 || budgets[1] != 50 || perf != 0 {
		t.Fatalf("all-curveless split = %v (perf %g), want 50/50", budgets, perf)
	}
}

func TestApportionShardsBelowFloors(t *testing.T) {
	shards := []ShardCurve{
		{FloorW: 80, Points: lineCurve(80, 5, 0.01)},
		{FloorW: 40, Points: lineCurve(40, 5, 0.01)},
	}
	budgets, perf := ApportionShards(60, shards, 0)
	if perf != 0 {
		t.Fatalf("starved apportion claims perf %g", perf)
	}
	if got := sum(budgets); got > 60+1e-6 {
		t.Fatalf("starved budgets sum to %g over cap 60", got)
	}
	// Pro-rated by floor: shard 0 owes twice shard 1's floor.
	if math.Abs(budgets[0]-2*budgets[1]) > 1e-6 {
		t.Fatalf("starved split %v not floor-proportional", budgets)
	}
}

// Satellite edge case: all shards idle — nothing moves.
func TestRebalanceHeadroomAllIdle(t *testing.T) {
	budgets := []float64{100, 100, 100}
	used := []float64{40, 50, 45}
	demand := []float64{40, 50, 45}
	out, moved := RebalanceHeadroom(budgets, used, demand, 0.05)
	if moved != 0 {
		t.Fatalf("all-idle fleet moved %g W", moved)
	}
	for i := range out {
		if out[i] != budgets[i] {
			t.Fatalf("all-idle budgets changed: %v", out)
		}
	}
}

// Satellite edge case: one shard holds the entire cap and sits idle;
// its starved siblings must receive headroom the moment they ask.
func TestRebalanceHeadroomSingleHolder(t *testing.T) {
	budgets := []float64{300, 0, 0}
	used := []float64{60, 0, 0}
	demand := []float64{60, 80, 40}
	out, moved := RebalanceHeadroom(budgets, used, demand, 0.05)
	if moved <= 0 {
		t.Fatal("no headroom moved off the idle holder")
	}
	if math.Abs(sum(out)-sum(budgets)) > 1e-9 {
		t.Fatalf("rebalance changed the total: %g -> %g", sum(budgets), sum(out))
	}
	if out[0] < 60*1.05-1e-9 {
		t.Fatalf("donor cut below its guarded demand: %g W", out[0])
	}
	// Shortfalls are 80 and 40: receipts must be proportional.
	got1, got2 := out[1]-budgets[1], out[2]-budgets[2]
	if got1 <= 0 || got2 <= 0 {
		t.Fatalf("starved shards received %g and %g W", got1, got2)
	}
	if math.Abs(got1-2*got2) > 1e-9 {
		t.Fatalf("receipts %g and %g not proportional to need 80:40", got1, got2)
	}
}

func TestRebalanceHeadroomSaturatedReceiver(t *testing.T) {
	// Shard 1 is saturated (draw pinned at its budget, demand above);
	// shard 0 has slack. The transfer must flow 0 -> 1 within one call.
	budgets := []float64{150, 100}
	used := []float64{70, 100}
	demand := []float64{70, 160}
	out, moved := RebalanceHeadroom(budgets, used, demand, 0.05)
	if moved <= 0 {
		t.Fatal("saturated shard received nothing")
	}
	if out[1] <= budgets[1] {
		t.Fatalf("saturated shard budget went from %g to %g", budgets[1], out[1])
	}
	if out[0] >= budgets[0] {
		t.Fatalf("idle shard budget went from %g to %g", budgets[0], out[0])
	}
	if math.Abs(sum(out)-sum(budgets)) > 1e-9 {
		t.Fatalf("rebalance changed the total: %g -> %g", sum(budgets), sum(out))
	}
}

func TestRebalanceHeadroomMalformedInput(t *testing.T) {
	budgets := []float64{100, 100}
	out, moved := RebalanceHeadroom(budgets, []float64{1}, []float64{1, 2}, 0)
	if moved != 0 || out[0] != 100 || out[1] != 100 {
		t.Fatalf("mismatched slices moved watts: %v (%g)", out, moved)
	}
}
