package cluster

import (
	"testing"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

func newEvalWithDropouts(t *testing.T, servers int, drops []Dropout) (*Evaluator, float64) {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	ev, err := NewEvaluator(Config{HW: hw, Library: lib, Mixes: assign, Dropouts: drops})
	if err != nil {
		t.Fatal(err)
	}
	uc, err := ev.UncappedClusterW()
	if err != nil {
		t.Fatal(err)
	}
	return ev, uc
}

func flatCaps(capW float64, n int) []trace.Point {
	out := make([]trace.Point, n)
	for i := range out {
		out[i] = trace.Point{T: float64(i), V: capW}
	}
	return out
}

func TestDropoutValidation(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, _ := workload.NewLibrary(hw)
	mixes := workload.Mixes()[:2]
	if _, err := NewEvaluator(Config{HW: hw, Library: lib, Mixes: mixes,
		Dropouts: []Dropout{{Server: 5, FromT: 0, ToT: 1}}}); err == nil {
		t.Error("out-of-range dropout server accepted")
	}
	if _, err := NewEvaluator(Config{HW: hw, Library: lib, Mixes: mixes,
		Dropouts: []Dropout{{Server: 0, FromT: 2, ToT: 2}}}); err == nil {
		t.Error("empty dropout window accepted")
	}
}

func TestDropoutReapportionsBudget(t *testing.T) {
	drop := Dropout{Server: 1, FromT: 1.5, ToT: 3.5}
	ev, uc := newEvalWithDropouts(t, 4, []Dropout{drop})
	caps := flatCaps(0.7*uc, 5) // t = 0..4; server 1 out at t = 2, 3

	res, err := ev.Evaluate(caps, EqualRAPL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reapportions != 2 {
		t.Fatalf("Reapportions = %d, want 2 (one loss, one return)", res.Reapportions)
	}
	log := ev.FaultLog()
	if log.Count("server-dropout") != 1 || log.Count("server-return") != 1 {
		t.Fatalf("transition events: %v", ev.FaultEvents())
	}
	// The survivors split the whole budget: the aggregate moves while
	// the server is out (under a tight cap it can move either way —
	// fewer tenants, but each far less constrained) and recovers
	// exactly when it returns.
	perfUp := res.PerfSeries[0].V
	perfDown := res.PerfSeries[2].V
	if perfDown == perfUp {
		t.Errorf("aggregate perf unchanged at %.2f with a server down", perfDown)
	}
	if res.PerfSeries[3].V != perfDown {
		t.Errorf("perf unstable within the outage: %v", res.PerfSeries)
	}
	if res.PerfSeries[4].V != perfUp {
		t.Errorf("perf after the return %.2f, want %.2f (full recovery)", res.PerfSeries[4].V, perfUp)
	}
	for _, p := range res.GridSeries {
		if p.V > 0.7*uc+1e-6 {
			t.Errorf("grid draw %.1f W over the %.1f W cluster cap at t=%g", p.V, 0.7*uc, p.T)
		}
	}
}

func TestDropoutWithUtilityApportioning(t *testing.T) {
	ev, uc := newEvalWithDropouts(t, 4, []Dropout{{Server: 0, FromT: 0.5, ToT: 2.5}})
	res, err := ev.Evaluate(flatCaps(0.75*uc, 4), UtilityOurs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reapportions != 2 {
		t.Fatalf("Reapportions = %d, want 2", res.Reapportions)
	}
	// The utility curves are re-derived over the survivors: perf moves
	// during the outage and recovers after, and the cached curves keyed
	// on the all-alive mask must not leak into the outage steps.
	if res.PerfSeries[1].V == res.PerfSeries[0].V {
		t.Errorf("perf series %v unchanged during the outage", res.PerfSeries)
	}
	if res.PerfSeries[3].V != res.PerfSeries[0].V {
		t.Errorf("perf did not recover after the return: %v", res.PerfSeries)
	}
}

// An out-of-window dropout schedule must replay bit-identically to a
// fleet with no dropouts configured at all.
func TestIdleDropoutScheduleBitIdentical(t *testing.T) {
	plain, uc := newEval(t, 4)
	scheduled, _ := newEvalWithDropouts(t, 4, []Dropout{{Server: 2, FromT: 100, ToT: 200}})
	caps := flatCaps(0.7*uc, 4)
	for _, strat := range []Strategy{EqualRAPL, EqualOurs, UtilityOurs} {
		a, err := plain.Evaluate(caps, strat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scheduled.Evaluate(caps, strat)
		if err != nil {
			t.Fatal(err)
		}
		if b.Reapportions != 0 {
			t.Errorf("%v: idle schedule counted %d reapportions", strat, b.Reapportions)
		}
		if a.AvgPerfFrac != b.AvgPerfFrac || a.EnergyJ != b.EnergyJ {
			t.Errorf("%v: idle dropout schedule perturbed the replay: %+v vs %+v", strat, a, b)
		}
	}
}
