package cluster

import "math"

// This file is the hierarchical tier of the Utility(Ours) apportioning
// machinery: per-shard curve rollups, the cluster-level DP that splits
// the cap across shards, and the headroom rebalancer that moves unused
// watts between shards — CloudPowerCap's cluster-wide budget
// redistribution (PAPERS.md) expressed over the same cap-utility
// curves ApportionCurves consumes, so every tier of the budget tree
// prices watts identically.

// DefaultShardLevels bounds the grid the cluster-level DP runs on.
// The flat DP's level count grows with the spare watts of the whole
// fleet — O(fleet-watts) levels at 2 W per level — which is exactly
// the per-interval cost the hierarchy exists to avoid; coarsening the
// grid to at most this many levels keeps the global tier's work
// O(shards × levels × curve points) regardless of fleet size (FastCap's
// scalability argument applied to the DP itself).
const DefaultShardLevels = 2048

// RollupCurves aggregates a shard's member cap-utility curves into one
// shard-level curve: point l is the best summed performance (and the
// grid draw of the member split achieving it) the shard can deliver
// when granted floorW per member plus l spare steps of ServerCapStepW.
// It is the forward table of the ApportionCurves DP read out level by
// level, so a cluster-level apportioner consuming the rollup prices the
// shard's watts exactly as the shard's own coordinator will spend them.
//
// Every curve must be non-empty (curveless members have no utility to
// roll up — the shard reports an empty aggregate and the tier above
// falls back to its even-share path); nil is returned otherwise.
func RollupCurves(floorW float64, curves [][]CapPoint) []CapPoint {
	n := len(curves)
	if n == 0 {
		return nil
	}
	levels := 1
	for _, c := range curves {
		if len(c) == 0 {
			return nil
		}
		levels += len(c) - 1
	}
	best := make([]float64, levels)
	grid := make([]float64, levels)
	for i := 0; i < n; i++ {
		next := make([]float64, levels)
		nextGrid := make([]float64, levels)
		for l := 0; l < levels; l++ {
			bestV, bestG := math.Inf(-1), 0.0
			kMax := l
			if kMax >= len(curves[i]) {
				kMax = len(curves[i]) - 1
			}
			for k := 0; k <= kMax; k++ {
				if v := best[l-k] + curves[i][k].Perf; v > bestV {
					bestV = v
					bestG = grid[l-k] + curves[i][k].GridW
				}
			}
			next[l], nextGrid[l] = bestV, bestG
		}
		best, grid = next, nextGrid
	}
	out := make([]CapPoint, levels)
	base := floorW * float64(n)
	for l := range out {
		out[l] = CapPoint{CapW: base + float64(l)*serverCapStepW, Perf: best[l], GridW: grid[l]}
	}
	return out
}

// DownsampleCurve thins a curve to at most maxPoints samples, always
// keeping the first and last points so the floor and the saturation
// cap survive. Budgets chosen off a thinned curve remain achievable —
// every surviving point is a real (cap, perf) sample — the rollup just
// loses intermediate resolution, which bounds the trunk payload.
func DownsampleCurve(curve []CapPoint, maxPoints int) []CapPoint {
	if maxPoints < 2 || len(curve) <= maxPoints {
		return curve
	}
	out := make([]CapPoint, 0, maxPoints)
	last := len(curve) - 1
	for i := 0; i < maxPoints-1; i++ {
		out = append(out, curve[i*last/(maxPoints-1)])
	}
	return append(out, curve[last])
}

// ShardCurve is one shard's aggregate offer to the cluster-level
// apportioner: the minimum watts it must receive, and its rolled-up
// cap-utility curve (empty when its members report no curves — the
// shard then takes the documented even-share fallback).
type ShardCurve struct {
	// FloorW is the shard's idle-floor sum. With a non-empty curve the
	// first point's CapW is authoritative; FloorW covers the curveless
	// fallback.
	FloorW float64
	Points []CapPoint
}

// costSteps quantizes a watt delta up to whole grid steps. Rounding up
// means the DP's accounting never undercounts real watts, so the sum
// of chosen budgets cannot exceed the cap through quantization alone.
func costSteps(deltaW, stepW float64) int {
	if deltaW <= 0 {
		return 0
	}
	return int(math.Ceil(deltaW/stepW - 1e-9))
}

// ApportionShards splits clusterCapW across shards to maximize summed
// performance: the multiple-choice knapsack over each shard's rollup,
// run on a grid coarsened to at most maxLevels levels (0 takes
// DefaultShardLevels) so the global tier's work stays O(shards), not
// O(fleet watts). Shards with empty curves take an even share of the
// cap, mirroring the flat coordinator's curveless-member fallback; the
// DP apportions the remainder across the curve-bearing shards, each
// owed at least its own floor (heterogeneous floors are fine here —
// every shard's curve already prices watts above its own first point).
//
// Guarantee: the returned budgets always sum to at most clusterCapW
// (costs are quantized upward, never down), which is the invariant the
// two-tier drills assert every interval.
func ApportionShards(clusterCapW float64, shards []ShardCurve, maxLevels int) (budgets []float64, perf float64) {
	n := len(shards)
	budgets = make([]float64, n)
	if n == 0 || clusterCapW <= 0 {
		return budgets, 0
	}
	if maxLevels <= 0 {
		maxLevels = DefaultShardLevels
	}
	per := clusterCapW / float64(n)
	remainW := clusterCapW
	var curved []int
	for i, s := range shards {
		if len(s.Points) == 0 {
			budgets[i] = per
			remainW -= per
		} else {
			curved = append(curved, i)
		}
	}
	if len(curved) == 0 {
		return budgets, 0
	}
	var baseSum float64
	for _, i := range curved {
		baseSum += shards[i].Points[0].CapW
	}
	capQ := math.Floor(remainW/serverCapStepW) * serverCapStepW
	if capQ < baseSum {
		// Not even the shard floors fit; pro-rate what there is.
		for _, i := range curved {
			if baseSum > 0 {
				budgets[i] = capQ * shards[i].Points[0].CapW / baseSum
			} else {
				budgets[i] = capQ / float64(len(curved))
			}
		}
		return budgets, 0
	}
	spare := capQ - baseSum
	stepW := serverCapStepW
	if int(spare/stepW)+1 > maxLevels {
		stepW = spare / float64(maxLevels-1)
	}
	levels := int(spare/stepW+1e-9) + 1
	best := make([]float64, levels)
	choice := make([][]int, len(curved))
	for j, i := range curved {
		pts := shards[i].Points
		choice[j] = make([]int, levels)
		next := make([]float64, levels)
		for l := 0; l < levels; l++ {
			bestV, bestK := math.Inf(-1), 0
			for k := range pts {
				// Curve caps are strictly increasing, so costs are
				// non-decreasing: past the level there is nothing left.
				cost := costSteps(pts[k].CapW-pts[0].CapW, stepW)
				if cost > l {
					break
				}
				if v := best[l-cost] + pts[k].Perf; v > bestV {
					bestV, bestK = v, k
				}
			}
			next[l] = bestV
			choice[j][l] = bestK
		}
		best = next
	}
	l := levels - 1
	for j := len(curved) - 1; j >= 0; j-- {
		i := curved[j]
		pts := shards[i].Points
		k := choice[j][l]
		budgets[i] = pts[k].CapW
		perf += pts[k].Perf
		l -= costSteps(pts[k].CapW-pts[0].CapW, stepW)
	}
	return budgets, perf
}

// RebalanceHeadroom moves unused headroom between shards: a shard
// whose budget exceeds both its measured draw and its estimated demand
// (with a guard fraction of slack) donates the excess, and shards
// whose demand exceeds their budget receive it in proportion to their
// shortfall. The transfer is conservative — donors are never cut below
// max(used, demand) × (1 + guardFrac), the total is preserved exactly
// (what moves out moves in), and a shard can never be both donor and
// receiver. Returns the adjusted budgets and the watts moved.
//
// Edge cases the tests pin down: an all-idle fleet (no shard wants
// more) moves nothing; a single shard holding the whole cap donates to
// starved siblings the moment they report demand; mismatched slice
// lengths move nothing (a malformed report must not shift watts).
func RebalanceHeadroom(budgets, usedW, demandW []float64, guardFrac float64) ([]float64, float64) {
	out := append([]float64(nil), budgets...)
	n := len(budgets)
	if len(usedW) != n || len(demandW) != n {
		return out, 0
	}
	if guardFrac < 0 {
		guardFrac = 0
	}
	surplus := make([]float64, n)
	need := make([]float64, n)
	var pool, needTotal float64
	for i := 0; i < n; i++ {
		keep := math.Max(usedW[i], demandW[i]) * (1 + guardFrac)
		if s := budgets[i] - keep; s > 0 {
			surplus[i] = s
			pool += s
		}
		if d := demandW[i] - budgets[i]; d > 0 {
			need[i] = d
			needTotal += d
		}
	}
	if pool <= 0 || needTotal <= 0 {
		return out, 0
	}
	moved := math.Min(pool, needTotal)
	for i := 0; i < n; i++ {
		if surplus[i] > 0 {
			out[i] -= moved * surplus[i] / pool
		}
		if need[i] > 0 {
			out[i] += moved * need[i] / needTotal
		}
	}
	return out, moved
}
