package cluster

import (
	"fmt"
	"math"

	"powerstruggle/internal/policy"
	"powerstruggle/internal/workload"
)

// Placement pairs an application population onto servers. It is the
// other half of the paper's future-work item (i): before any watts are
// apportioned, *which* applications share a server decides how much a
// mediator can recover — complementary pairs (compute-bound with
// memory-bound) leave the allocator slack to shift, twin pairs fight
// over the same resource.
type Placement struct {
	// Pairs lists the two application names placed on each server.
	Pairs [][2]string
	// PredictedPerf is the summed mediated objective across servers at
	// the reference cap.
	PredictedPerf float64
}

// PlacementConfig parameterizes power-aware placement.
type PlacementConfig struct {
	// ReferenceCapW is the per-server cap the pairing optimizes for
	// (default 85: pairing only matters where the cap binds hard
	// enough that the utility curves are in their steep region).
	ReferenceCapW float64
	// Policy mediates inside each server (default App+Res-Aware).
	Policy policy.Kind
}

func (c PlacementConfig) withDefaults() PlacementConfig {
	if c.ReferenceCapW <= 0 {
		c.ReferenceCapW = 85
	}
	if c.Policy == 0 {
		c.Policy = policy.AppResAware
	}
	return c
}

// maxMatchApps bounds the exact matching DP (2^n states).
const maxMatchApps = 20

// pairScore predicts one pair's mediated objective under the reference
// cap.
func (e *Evaluator) pairScore(a, b *workload.Profile, cfg PlacementConfig) (float64, error) {
	dec, err := policy.Plan(cfg.Policy, policy.Context{
		HW:       e.cfg.HW,
		CapW:     cfg.ReferenceCapW,
		Profiles: []*workload.Profile{a, b},
		Library:  e.cfg.Library,
	})
	if err != nil {
		return 0, err
	}
	return dec.Schedule.TotalPerf, nil
}

// scoreMatrix evaluates every pair once.
func (e *Evaluator) scoreMatrix(apps []*workload.Profile, cfg PlacementConfig) ([][]float64, error) {
	n := len(apps)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s, err := e.pairScore(apps[i], apps[j], cfg)
			if err != nil {
				return nil, err
			}
			m[i][j], m[j][i] = s, s
		}
	}
	return m, nil
}

// matchDP solves minimum/maximum-weight perfect matching exactly by
// dynamic programming over application subsets.
func matchDP(score [][]float64, maximize bool) ([][2]int, float64) {
	n := len(score)
	full := 1 << n
	worst := math.Inf(-1)
	if !maximize {
		worst = math.Inf(1)
	}
	better := func(a, b float64) bool {
		if maximize {
			return a > b
		}
		return a < b
	}
	dp := make([]float64, full)
	from := make([][2]int, full)
	for m := 1; m < full; m++ {
		dp[m] = worst
		from[m] = [2]int{-1, -1}
	}
	for mask := 0; mask < full; mask++ {
		if math.IsInf(dp[mask], 0) {
			continue
		}
		// The lowest unpaired application must pair with someone.
		i := 0
		for ; i < n; i++ {
			if mask&(1<<i) == 0 {
				break
			}
		}
		if i == n {
			continue
		}
		for j := i + 1; j < n; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			next := mask | 1<<i | 1<<j
			if v := dp[mask] + score[i][j]; better(v, dp[next]) {
				dp[next] = v
				from[next] = [2]int{i, j}
			}
		}
	}
	var pairs [][2]int
	mask := full - 1
	for mask != 0 {
		p := from[mask]
		pairs = append(pairs, p)
		mask &^= 1<<p[0] | 1<<p[1]
	}
	return pairs, dp[full-1]
}

// placeMatched runs the exact matching and dresses the result.
func (e *Evaluator) placeMatched(apps []*workload.Profile, cfg PlacementConfig, maximize bool) (*Placement, error) {
	cfg = cfg.withDefaults()
	n := len(apps)
	if n == 0 || n%2 != 0 {
		return nil, fmt.Errorf("cluster: placement needs an even number of applications, got %d", n)
	}
	if n > maxMatchApps {
		return nil, fmt.Errorf("cluster: exact placement supports up to %d applications, got %d", maxMatchApps, n)
	}
	score, err := e.scoreMatrix(apps, cfg)
	if err != nil {
		return nil, err
	}
	pairs, total := matchDP(score, maximize)
	out := &Placement{PredictedPerf: total}
	for _, p := range pairs {
		out.Pairs = append(out.Pairs, [2]string{apps[p[0]].Name, apps[p[1]].Name})
	}
	return out, nil
}

// PlaceOptimal pairs the applications by exact maximum-weight matching
// on mediated pair scores — the best the cluster scheduler can do with
// this population.
func (e *Evaluator) PlaceOptimal(apps []*workload.Profile, cfg PlacementConfig) (*Placement, error) {
	return e.placeMatched(apps, cfg, true)
}

// PlaceWorst pairs for minimum predicted performance — the adversarial
// bound that brackets how much placement can matter.
func (e *Evaluator) PlaceWorst(apps []*workload.Profile, cfg PlacementConfig) (*Placement, error) {
	return e.placeMatched(apps, cfg, false)
}

// PlaceNaive pairs the applications in the order given (the
// power-oblivious baseline a conventional scheduler produces).
func (e *Evaluator) PlaceNaive(apps []*workload.Profile, cfg PlacementConfig) (*Placement, error) {
	cfg = cfg.withDefaults()
	n := len(apps)
	if n == 0 || n%2 != 0 {
		return nil, fmt.Errorf("cluster: placement needs an even number of applications, got %d", n)
	}
	out := &Placement{}
	for i := 0; i < n; i += 2 {
		s, err := e.pairScore(apps[i], apps[i+1], cfg)
		if err != nil {
			return nil, err
		}
		out.Pairs = append(out.Pairs, [2]string{apps[i].Name, apps[i+1].Name})
		out.PredictedPerf += s
	}
	return out, nil
}
