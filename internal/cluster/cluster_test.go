package cluster

import (
	"testing"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

func newEval(t *testing.T, servers int) (*Evaluator, float64) {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	ev, err := NewEvaluator(Config{HW: hw, Library: lib, Mixes: assign})
	if err != nil {
		t.Fatal(err)
	}
	uc, err := ev.UncappedClusterW()
	if err != nil {
		t.Fatal(err)
	}
	return ev, uc
}

func testCaps(t *testing.T, uc float64, shave float64) []trace.Point {
	t.Helper()
	load, err := trace.DiurnalLoad(trace.Config{Seed: 5, StepSeconds: 1800})
	if err != nil {
		t.Fatal(err)
	}
	demand := make([]trace.Point, len(load))
	for i, p := range load {
		demand[i] = trace.Point{T: p.T, V: p.V * uc}
	}
	caps, err := trace.PeakShaveCaps(demand, shave, uc)
	if err != nil {
		t.Fatal(err)
	}
	return caps
}

func TestEvaluatorValidation(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, _ := workload.NewLibrary(hw)
	if _, err := NewEvaluator(Config{HW: hw, Mixes: workload.Mixes()[:1]}); err == nil {
		t.Error("evaluator without a library accepted")
	}
	if _, err := NewEvaluator(Config{HW: hw, Library: lib}); err == nil {
		t.Error("evaluator without servers accepted")
	}
}

func TestUncappedClusterScale(t *testing.T) {
	ev, uc := newEval(t, 10)
	if ev.Servers() != 10 {
		t.Fatalf("Servers = %d", ev.Servers())
	}
	// Ten servers near the paper's ~110 W co-located draw.
	if uc < 1000 || uc > 1250 {
		t.Errorf("uncapped cluster %g W, want ~1100", uc)
	}
}

func TestEvaluateEmptyCaps(t *testing.T) {
	ev, _ := newEval(t, 2)
	if _, err := ev.Evaluate(nil, EqualRAPL); err == nil {
		t.Error("empty cap schedule accepted")
	}
}

func TestStrategiesNeverViolateCaps(t *testing.T) {
	ev, uc := newEval(t, 10)
	caps := testCaps(t, uc, 0.30)
	for _, s := range []Strategy{EqualRAPL, EqualOurs, ConsolidateMigrate} {
		r, err := ev.Evaluate(caps, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.CapViolations != 0 {
			t.Errorf("%v: %d cap violations", s, r.CapViolations)
		}
		if len(r.PerfSeries) != len(caps) || len(r.GridSeries) != len(caps) {
			t.Errorf("%v: ragged series", s)
		}
	}
}

func TestFig12Ordering(t *testing.T) {
	ev, uc := newEval(t, 10)
	for _, shave := range []float64{0.15, 0.30, 0.45} {
		caps := testCaps(t, uc, shave)
		rapl, err := ev.Evaluate(caps, EqualRAPL)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := ev.Evaluate(caps, EqualOurs)
		if err != nil {
			t.Fatal(err)
		}
		cons, err := ev.Evaluate(caps, ConsolidateMigrate)
		if err != nil {
			t.Fatal(err)
		}
		if ours.AvgPerfFrac <= rapl.AvgPerfFrac {
			t.Errorf("shave %.0f%%: Ours (%.3f) does not beat RAPL (%.3f)",
				shave*100, ours.AvgPerfFrac, rapl.AvgPerfFrac)
		}
		// The paper: Ours is equivalent or better than consolidation.
		if ours.AvgPerfFrac < cons.AvgPerfFrac-0.02 {
			t.Errorf("shave %.0f%%: Ours (%.3f) well below consolidation (%.3f)",
				shave*100, ours.AvgPerfFrac, cons.AvgPerfFrac)
		}
		if ours.Efficiency <= rapl.Efficiency {
			t.Errorf("shave %.0f%%: Ours efficiency (%.3f) does not beat RAPL (%.3f)",
				shave*100, ours.Efficiency, rapl.Efficiency)
		}
	}
}

func TestDeeperShavingHurtsEveryStrategy(t *testing.T) {
	ev, uc := newEval(t, 10)
	for _, s := range []Strategy{EqualRAPL, EqualOurs, ConsolidateMigrate} {
		prev := 2.0
		for _, shave := range []float64{0.15, 0.30, 0.45} {
			r, err := ev.Evaluate(testCaps(t, uc, shave), s)
			if err != nil {
				t.Fatal(err)
			}
			if r.AvgPerfFrac > prev+1e-9 {
				t.Errorf("%v: perf rose from %.3f to %.3f as shaving deepened",
					s, prev, r.AvgPerfFrac)
			}
			prev = r.AvgPerfFrac
		}
	}
}

func TestConsolidationInfeasibility(t *testing.T) {
	ev, _ := newEval(t, 10)
	// 20 applications on 1 server would need 20 > 12 cores.
	infeasible, err := ev.ConsolidationInfeasible(1)
	if err != nil {
		t.Fatal(err)
	}
	if !infeasible {
		t.Error("packing 20 applications on one 12-core server deemed feasible")
	}
	feasible, err := ev.ConsolidationInfeasible(10)
	if err != nil {
		t.Fatal(err)
	}
	if feasible {
		t.Error("baseline placement deemed infeasible")
	}
	if _, err := ev.ConsolidationInfeasible(0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	if EqualRAPL.String() != "Equal(RAPL)" ||
		EqualOurs.String() != "Equal(Ours)" ||
		ConsolidateMigrate.String() != "Consolidation+Migration(no cap)" {
		t.Error("strategy names changed")
	}
}

func TestUtilityApportioningBeatsEqualSplit(t *testing.T) {
	ev, uc := newEval(t, 10)
	for _, shave := range []float64{0.30, 0.45} {
		caps := testCaps(t, uc, shave)
		equal, err := ev.Evaluate(caps, EqualOurs)
		if err != nil {
			t.Fatal(err)
		}
		util, err := ev.Evaluate(caps, UtilityOurs)
		if err != nil {
			t.Fatal(err)
		}
		if util.CapViolations != 0 {
			t.Fatalf("shave %.0f%%: Utility(Ours) violated the cap %d times", shave*100, util.CapViolations)
		}
		// Apportioning the cluster cap by marginal utility must not lose
		// to the equal split it generalizes.
		if util.AvgPerfFrac+1e-6 < equal.AvgPerfFrac {
			t.Errorf("shave %.0f%%: Utility(Ours) %.3f below Equal(Ours) %.3f",
				shave*100, util.AvgPerfFrac, equal.AvgPerfFrac)
		}
	}
}

func TestUtilityOursName(t *testing.T) {
	if UtilityOurs.String() != "Utility(Ours)" {
		t.Errorf("name %q", UtilityOurs.String())
	}
}

func TestPowerAwarePlacement(t *testing.T) {
	ev, _ := newEval(t, 6)
	lib := ev.cfg.Library
	apps := lib.Apps() // 12 applications -> 6 servers
	cfg := PlacementConfig{}
	best, err := ev.PlaceOptimal(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ev.PlaceNaive(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := ev.PlaceWorst(apps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Pairs) != 6 || len(naive.Pairs) != 6 || len(worst.Pairs) != 6 {
		t.Fatalf("pair counts: %d/%d/%d", len(best.Pairs), len(naive.Pairs), len(worst.Pairs))
	}
	if best.PredictedPerf+1e-9 < naive.PredictedPerf {
		t.Errorf("optimal placement (%.3f) below the naive baseline (%.3f)",
			best.PredictedPerf, naive.PredictedPerf)
	}
	if best.PredictedPerf+1e-9 < worst.PredictedPerf {
		t.Errorf("optimal placement (%.3f) below the adversarial pairing (%.3f)",
			best.PredictedPerf, worst.PredictedPerf)
	}
	// The bracket should be non-degenerate: placement must matter.
	if spread := best.PredictedPerf - worst.PredictedPerf; spread < 0.05 {
		t.Errorf("placement spread only %.3f: pairing does not matter in this model?", spread)
	}
	// Every application placed exactly once.
	seen := map[string]int{}
	for _, p := range best.Pairs {
		seen[p[0]]++
		seen[p[1]]++
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("%s placed %d times", name, n)
		}
	}
}

func TestPlacementValidation(t *testing.T) {
	ev, _ := newEval(t, 2)
	apps := ev.cfg.Library.Apps()
	if _, err := ev.PlaceOptimal(apps[:3], PlacementConfig{}); err == nil {
		t.Error("odd application count accepted")
	}
	if _, err := ev.PlaceNaive(nil, PlacementConfig{}); err == nil {
		t.Error("empty population accepted")
	}
}

func TestHeterogeneousBatteryFleet(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, _ := workload.NewLibrary(hw)
	mixes := workload.Mixes()[:10]

	build := func(batteries []bool) *Evaluator {
		ev, err := NewEvaluator(Config{HW: hw, Library: lib, Mixes: mixes, BatteryServers: batteries})
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	half := make([]bool, 10)
	for i := range half {
		half[i] = i%2 == 0
	}
	none := make([]bool, 10)

	full, _ := newEval(t, 10)
	uc, err := full.UncappedClusterW()
	if err != nil {
		t.Fatal(err)
	}
	caps := testCaps(t, uc, 0.45) // deep shaving: only batteries help

	perfOf := func(ev *Evaluator, strat Strategy) float64 {
		r, err := ev.Evaluate(caps, strat)
		if err != nil {
			t.Fatal(err)
		}
		if r.CapViolations != 0 {
			t.Fatalf("%v: %d violations", strat, r.CapViolations)
		}
		return r.AvgPerfFrac
	}

	allB := perfOf(full, EqualOurs)
	halfB := perfOf(build(half), EqualOurs)
	noneB := perfOf(build(none), EqualOurs)
	// Monotone in battery coverage.
	if !(allB >= halfB && halfB >= noneB) {
		t.Errorf("battery coverage not monotone: all %.3f, half %.3f, none %.3f", allB, halfB, noneB)
	}
	if allB <= noneB {
		t.Errorf("batteries buy nothing at deep shaving: %.3f vs %.3f", allB, noneB)
	}

	// Utility-aware apportioning exploits the mixed fleet: it can route
	// the stringent budgets toward the battery servers, so it must beat
	// the equal split on the same half-battery fleet.
	halfUtil := perfOf(build(half), UtilityOurs)
	if halfUtil+1e-6 < halfB {
		t.Errorf("Utility(Ours) %.3f below Equal(Ours) %.3f on the mixed fleet", halfUtil, halfB)
	}
}

func TestBatteryFlagValidation(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, _ := workload.NewLibrary(hw)
	if _, err := NewEvaluator(Config{
		HW: hw, Library: lib, Mixes: workload.Mixes()[:4], BatteryServers: []bool{true},
	}); err == nil {
		t.Error("mismatched battery flags accepted")
	}
}

func TestEvaluateRejectsUnknownStrategy(t *testing.T) {
	ev, uc := newEval(t, 2)
	caps := testCaps(t, uc, 0.15)
	if _, err := ev.Evaluate(caps, Strategy(99)); err == nil {
		t.Error("unknown strategy accepted")
	}
	if Strategy(99).String() == "" {
		t.Error("unknown strategy has empty name")
	}
}
