package cluster

import (
	"math/rand"
	"testing"
)

// randCurve builds a plausible cap-utility curve: strictly increasing
// caps on the DP grid, non-decreasing perf, arbitrary grid draw.
func randCurve(rng *rand.Rand, floorW float64) []CapPoint {
	n := 1 + rng.Intn(40)
	out := make([]CapPoint, n)
	perf := rng.Float64() * 0.2
	for k := 0; k < n; k++ {
		perf += rng.Float64() * 0.3
		out[k] = CapPoint{
			CapW:  floorW + float64(k)*ServerCapStepW,
			Perf:  perf,
			GridW: floorW + rng.Float64()*float64(k)*ServerCapStepW,
		}
	}
	return out
}

// TestApportionerMatchesFullDP holds the incremental apportioner
// bit-identical to ApportionCurves through a randomized interval
// sequence: caps move every step, and a random subset of member curves
// (often none, sometimes all) changes between steps — the exact access
// pattern the coordinator generates once live daemons learn online.
func TestApportionerMatchesFullDP(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const floorW = 40.0
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		curves := make([][]CapPoint, n)
		for i := range curves {
			curves[i] = randCurve(rng, floorW)
		}
		var inc Apportioner
		for step := 0; step < 30; step++ {
			// Mutate a random subset: mostly nobody, sometimes a tail,
			// occasionally everyone (a membership churn analogue).
			switch rng.Intn(4) {
			case 1:
				i := rng.Intn(n)
				curves[i] = randCurve(rng, floorW)
			case 2:
				for i := rng.Intn(n); i < n; i++ {
					curves[i] = randCurve(rng, floorW)
				}
			}
			// Caps span from "floors don't fit" to generous.
			capW := floorW*float64(n)*0.5 + rng.Float64()*floorW*float64(n)*2.5
			wantB, wantP, wantG := ApportionCurves(capW, floorW, curves)
			gotB, gotP, gotG := inc.Apportion(capW, floorW, curves)
			if gotP != wantP || gotG != wantG {
				t.Fatalf("trial %d step %d: perf/grid (%v, %v), full DP (%v, %v)",
					trial, step, gotP, gotG, wantP, wantG)
			}
			for i := range wantB {
				if gotB[i] != wantB[i] {
					t.Fatalf("trial %d step %d: member %d budget %v, full DP %v",
						trial, step, i, gotB[i], wantB[i])
				}
			}
		}
	}
}

// TestApportionerIncrementalReuse pins the fast path's whole point:
// a cap-only change recomputes zero member layers, and k tail changes
// recompute exactly k.
func TestApportionerIncrementalReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const floorW, n = 40.0, 16
	curves := make([][]CapPoint, n)
	for i := range curves {
		curves[i] = randCurve(rng, floorW)
	}
	var inc Apportioner
	inc.Apportion(900, floorW, curves)
	if got := inc.LastRecomputed(); got != n {
		t.Fatalf("cold start recomputed %d layers, want %d", got, n)
	}
	// Cap moves alone: reconstruction only. A higher cap extends the
	// clean prefix's columns in place without counting as a rebuild.
	for _, capW := range []float64{700, 1100, 864, 1300} {
		inc.Apportion(capW, floorW, curves)
		if got := inc.LastRecomputed(); got != 0 {
			t.Fatalf("cap-only change to %g W recomputed %d layers, want 0", capW, got)
		}
	}
	// k changed tail members: exactly k layers rebuilt.
	for _, k := range []int{1, 3} {
		for i := n - k; i < n; i++ {
			curves[i] = randCurve(rng, floorW)
		}
		inc.Apportion(1000, floorW, curves)
		if got := inc.LastRecomputed(); got != k {
			t.Fatalf("%d tail changes recomputed %d layers, want %d", k, got, k)
		}
	}
	// And it all stayed bit-identical after the churn.
	wantB, _, _ := ApportionCurves(1000, floorW, curves)
	gotB, _, _ := inc.Apportion(1000, floorW, curves)
	for i := range wantB {
		if gotB[i] != wantB[i] {
			t.Fatalf("member %d budget %v, full DP %v", i, gotB[i], wantB[i])
		}
	}
}
