package cluster

import (
	"bytes"
	"testing"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

func TestClusterTelemetry(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, 4)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	hub := telemetry.New(0)
	ev, err := NewEvaluator(Config{
		HW: hw, Library: lib, Mixes: assign,
		Dropouts:  []Dropout{{Server: 1, FromT: 1.5, ToT: 3.5}},
		Telemetry: hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	uc, err := ev.UncappedClusterW()
	if err != nil {
		t.Fatal(err)
	}
	caps := flatCaps(0.7*uc, 5) // server 1 out at t = 2, 3
	res, err := ev.Evaluate(caps, EqualOurs)
	if err != nil {
		t.Fatal(err)
	}

	reg := hub.Registry()
	if got := reg.Counter("ps_cluster_steps_total", "").Value(); got != uint64(len(caps)) {
		t.Fatalf("steps counter = %d, want %d", got, len(caps))
	}
	if got := reg.Counter("ps_cluster_reapportions_total", "").Value(); got != uint64(res.Reapportions) {
		t.Fatalf("reapportions counter = %d, result says %d", got, res.Reapportions)
	}
	if res.Reapportions != 2 {
		t.Fatalf("Reapportions = %d, want 2 (one dropout, one return)", res.Reapportions)
	}
	if got := reg.Counter("ps_cluster_cap_violations_total", "").Value(); got != uint64(res.CapViolations) {
		t.Fatalf("violations counter = %d, result says %d", got, res.CapViolations)
	}
	// The schedule ends with every server back: 4 alive, equal budgets.
	if got := reg.Gauge("ps_cluster_alive_servers", "").Value(); got != 4 {
		t.Fatalf("alive gauge = %g, want 4", got)
	}
	per := caps[len(caps)-1].V / 4
	for _, s := range []string{"0", "1", "2", "3"} {
		if got := reg.GaugeVec("ps_cluster_server_budget_watts", "", "server").With(s).Value(); got != per {
			t.Fatalf("server %s budget gauge = %g, want %g", s, got, per)
		}
	}
	// Dropout and return both landed on the cluster trace track.
	var drops, returns int
	for _, evn := range hub.Tracer().Events() {
		if evn.Tid != telemetry.TidClusterT {
			continue
		}
		switch evn.Name {
		case "server-dropout":
			drops++
		case "server-return":
			returns++
		}
	}
	if drops != 1 || returns != 1 {
		t.Fatalf("trace has %d dropouts / %d returns, want 1/1", drops, returns)
	}
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom.Bytes(), []byte(`ps_cluster_server_budget_watts{server="1"}`)) {
		t.Fatal("metrics page lacks labeled per-server budget series")
	}
}

// Evaluation results must be identical with and without instrumentation.
func TestClusterTelemetryResultsUnchanged(t *testing.T) {
	build := func(hub *telemetry.Hub) *Evaluator {
		hw := simhw.DefaultConfig()
		lib, err := workload.NewLibrary(hw)
		if err != nil {
			t.Fatal(err)
		}
		mixes := workload.Mixes()
		assign := make([]workload.Mix, 3)
		for i := range assign {
			assign[i] = mixes[i%len(mixes)]
		}
		ev, err := NewEvaluator(Config{
			HW: hw, Library: lib, Mixes: assign,
			Dropouts:  []Dropout{{Server: 0, FromT: 1, ToT: 2}},
			Telemetry: hub,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ev
	}
	bare := build(nil)
	inst := build(telemetry.New(0))
	uc, err := bare.UncappedClusterW()
	if err != nil {
		t.Fatal(err)
	}
	caps := flatCaps(0.65*uc, 4)
	a, err := bare.Evaluate(caps, EqualOurs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inst.Evaluate(caps, EqualOurs)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPerfFrac != b.AvgPerfFrac || a.EnergyJ != b.EnergyJ ||
		a.CapViolations != b.CapViolations || a.Reapportions != b.Reapportions {
		t.Fatalf("instrumented replay diverged:\n  bare: %+v\n  inst: %+v", a, b)
	}
}
