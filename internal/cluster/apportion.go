package cluster

import (
	"math"

	"powerstruggle/internal/policy"
)

// UtilityOurs is the extension the paper's conclusion points at
// ("integration with cluster/datacenter level scheduling"): instead of
// splitting the cluster cap evenly, the cluster manager apportions it
// across servers by the marginal utility of each watt — the paper's R1
// applied one level up the power hierarchy — with App+Res+ESD-Aware
// mediating inside each server. Under deep shaving it concentrates
// power on fewer servers (amortizing their P_idle + P_cm) without any
// migration, capping the rest at their idle floor.
const UtilityOurs Strategy = ConsolidateMigrate + 1

// serverCapStepW is the grid on which per-server cap-utility curves are
// sampled and the cluster DP runs.
const serverCapStepW = 2.0

// capPoint is one sample of a server's cap-utility curve.
type capPoint struct {
	capW  float64
	perf  float64
	gridW float64
}

// serverCapCurve samples one server's performance as a function of its
// cap, from the idle floor (nothing can cap below it without shutting
// the server down) to the nameplate.
func (e *Evaluator) serverCapCurve(mixIdx int) ([]capPoint, error) {
	mix := e.cfg.Mixes[mixIdx]
	var out []capPoint
	nameplate := e.cfg.HW.MaxServerWatts()
	for cap := e.cfg.HW.PIdleWatts; cap <= nameplate+serverCapStepW; cap += serverCapStepW {
		p, err := e.planServer(mix, policy.AppResESDAware, math.Min(cap, nameplate), e.cfg.hasBattery(mixIdx))
		if err != nil {
			return nil, err
		}
		out = append(out, capPoint{capW: math.Min(cap, nameplate), perf: p.perf, gridW: p.gridW})
	}
	return out, nil
}

// utilityStep apportions one instant's cluster cap across the live
// servers by dynamic programming over their cap-utility curves.
func (e *Evaluator) utilityStep(clusterCapW float64, alive []bool) (perf, grid float64, err error) {
	n := e.aliveCount(alive)
	if n == 0 {
		return 0, 0, nil
	}
	floor := e.cfg.HW.PIdleWatts
	if clusterCapW < floor*float64(n) {
		// Not even the idle floors fit; the fleet draws what it may.
		return 0, clusterCapW, nil
	}
	var idxs []int
	for i := range e.cfg.Mixes {
		if isAlive(alive, i) {
			idxs = append(idxs, i)
		}
	}
	curves := make([][]capPoint, n)
	for j, i := range idxs {
		c, err := e.serverCapCurve(i)
		if err != nil {
			return 0, 0, err
		}
		curves[j] = c
	}
	// DP over the budget above the idle floors, in curve-index units
	// (curve point k costs k*serverCapStepW above the floor).
	spare := clusterCapW - floor*float64(n)
	levels := int(spare/serverCapStepW) + 1
	best := make([]float64, levels)
	choice := make([][]int, n)
	for i := 0; i < n; i++ {
		choice[i] = make([]int, levels)
		next := make([]float64, levels)
		for l := 0; l < levels; l++ {
			bestV, bestK := math.Inf(-1), 0
			kMax := l
			if kMax >= len(curves[i]) {
				kMax = len(curves[i]) - 1
			}
			for k := 0; k <= kMax; k++ {
				if v := best[l-k] + curves[i][k].perf; v > bestV {
					bestV, bestK = v, k
				}
			}
			next[l] = bestV
			choice[i][l] = bestK
		}
		best = next
	}
	l := levels - 1
	for i := n - 1; i >= 0; i-- {
		k := choice[i][l]
		perf += curves[i][k].perf
		grid += curves[i][k].gridW
		l -= k
	}
	return perf, grid, nil
}

// utilityCache memoizes utilityStep on the quantized cluster cap.
type utilityCacheEntry struct {
	perf, grid float64
}

// utilKey is the memoization key: the quantized cap plus the liveness
// mask in force — a dropout changes the apportioning even at the same
// cap.
type utilKey struct {
	level float64
	mask  string
}

// utilityCachedStep is utilityStep with memoization on the quantized
// cluster cap (caps repeat across a shaving event) and the alive set.
func (e *Evaluator) utilityCachedStep(clusterCapW float64, alive []bool) (float64, float64, error) {
	key := utilKey{level: math.Floor(clusterCapW / serverCapStepW), mask: maskKey(alive)}
	if e.utilCache == nil {
		e.utilCache = make(map[utilKey]utilityCacheEntry)
	}
	if ent, ok := e.utilCache[key]; ok {
		return ent.perf, ent.grid, nil
	}
	perf, grid, err := e.utilityStep(key.level*serverCapStepW, alive)
	if err != nil {
		return 0, 0, err
	}
	e.utilCache[key] = utilityCacheEntry{perf: perf, grid: grid}
	return perf, grid, nil
}
