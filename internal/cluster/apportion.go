package cluster

import (
	"fmt"
	"math"

	"powerstruggle/internal/policy"
)

// UtilityOurs is the extension the paper's conclusion points at
// ("integration with cluster/datacenter level scheduling"): instead of
// splitting the cluster cap evenly, the cluster manager apportions it
// across servers by the marginal utility of each watt — the paper's R1
// applied one level up the power hierarchy — with App+Res+ESD-Aware
// mediating inside each server. Under deep shaving it concentrates
// power on fewer servers (amortizing their P_idle + P_cm) without any
// migration, capping the rest at their idle floor.
const UtilityOurs Strategy = ConsolidateMigrate + 1

// serverCapStepW is the grid on which per-server cap-utility curves are
// sampled and the cluster DP runs.
const serverCapStepW = 2.0

// ServerCapStepW exposes the DP's cap-sampling grid to external
// apportioners (the networked control plane quantizes the same way so
// its budget decisions stay bit-identical to the simulation's).
const ServerCapStepW = serverCapStepW

// CapPoint is one sample of a server's cap-utility curve: the
// performance and grid draw the server delivers when capped at CapW.
// The control plane ships these curves over the wire, so the fields
// carry stable JSON names.
type CapPoint struct {
	CapW  float64 `json:"capW"`
	Perf  float64 `json:"perf"`
	GridW float64 `json:"gridW"`
}

// ServerCapCurve samples server i's performance as a function of its
// cap, from the idle floor (nothing can cap below it without shutting
// the server down) to the nameplate. Safe for concurrent use; the
// underlying plans are memoized across callers.
func (e *Evaluator) ServerCapCurve(i int) ([]CapPoint, error) {
	if i < 0 || i >= len(e.cfg.Mixes) {
		return nil, fmt.Errorf("cluster: server %d of %d", i, len(e.cfg.Mixes))
	}
	mix := e.cfg.Mixes[i]
	var out []CapPoint
	nameplate := e.cfg.HW.MaxServerWatts()
	for cap := e.cfg.HW.PIdleWatts; cap <= nameplate+serverCapStepW; cap += serverCapStepW {
		p, err := e.planServer(mix, policy.AppResESDAware, math.Min(cap, nameplate), e.cfg.hasBattery(i))
		if err != nil {
			return nil, err
		}
		out = append(out, CapPoint{CapW: math.Min(cap, nameplate), Perf: p.perf, GridW: p.gridW})
	}
	return out, nil
}

// ApportionCurves runs the Utility(Ours) apportioning DP over a set of
// cap-utility curves: it splits clusterCapW across the curves' servers
// to maximize summed performance and returns the chosen per-server
// budgets alongside the performance and grid draw those choices
// deliver. The cap is quantized to the curve grid (ServerCapStepW) and
// every server is owed at least floorW (its idle floor) before the DP
// distributes the spare watts; curve point k is priced at k steps above
// the floor, exactly as the curves are sampled.
//
// This one function is shared by the in-process evaluator and the
// networked coordinator, which is what makes the control plane's budget
// decisions bit-identical to the simulation's: same curves in, same
// budgets out.
func ApportionCurves(clusterCapW, floorW float64, curves [][]CapPoint) (budgets []float64, perf, gridW float64) {
	n := len(curves)
	budgets = make([]float64, n)
	if n == 0 {
		return budgets, 0, 0
	}
	capQ := math.Floor(clusterCapW/serverCapStepW) * serverCapStepW
	if capQ < floorW*float64(n) {
		// Not even the idle floors fit; the fleet draws what it may.
		per := capQ / float64(n)
		for i := range budgets {
			budgets[i] = per
		}
		return budgets, 0, capQ
	}
	// DP over the budget above the idle floors, in curve-index units
	// (curve point k costs k*serverCapStepW above the floor).
	spare := capQ - floorW*float64(n)
	levels := int(spare/serverCapStepW) + 1
	best := make([]float64, levels)
	choice := make([][]int, n)
	for i := 0; i < n; i++ {
		choice[i] = make([]int, levels)
		next := make([]float64, levels)
		for l := 0; l < levels; l++ {
			bestV, bestK := math.Inf(-1), 0
			kMax := l
			if kMax >= len(curves[i]) {
				kMax = len(curves[i]) - 1
			}
			for k := 0; k <= kMax; k++ {
				if v := best[l-k] + curves[i][k].Perf; v > bestV {
					bestV, bestK = v, k
				}
			}
			next[l] = bestV
			choice[i][l] = bestK
		}
		best = next
	}
	l := levels - 1
	for i := n - 1; i >= 0; i-- {
		k := choice[i][l]
		budgets[i] = curves[i][k].CapW
		perf += curves[i][k].Perf
		gridW += curves[i][k].GridW
		l -= k
	}
	return budgets, perf, gridW
}

// utilityCache memoizes the DP on the quantized cluster cap.
type utilityCacheEntry struct {
	perf, grid float64
	budgets    []float64
}

// utilKey is the memoization key: the quantized cap plus the liveness
// mask in force — a dropout changes the apportioning even at the same
// cap.
type utilKey struct {
	level float64
	mask  string
}

// utilityCachedStep apportions one instant's cluster cap across the
// live servers with the DP, memoized on the quantized cluster cap (caps
// repeat across a shaving event) and the alive set. The returned budget
// vector spans the whole fleet, dropped servers at zero; callers must
// not mutate it.
func (e *Evaluator) utilityCachedStep(clusterCapW float64, alive []bool) (float64, float64, []float64, error) {
	key := utilKey{level: math.Floor(clusterCapW / serverCapStepW), mask: maskKey(alive)}
	if e.utilCache == nil {
		e.utilCache = make(map[utilKey]utilityCacheEntry)
	}
	if ent, ok := e.utilCache[key]; ok {
		return ent.perf, ent.grid, ent.budgets, nil
	}
	var idxs []int
	for i := range e.cfg.Mixes {
		if isAlive(alive, i) {
			idxs = append(idxs, i)
		}
	}
	budgets := make([]float64, len(e.cfg.Mixes))
	if len(idxs) == 0 {
		e.utilCache[key] = utilityCacheEntry{budgets: budgets}
		return 0, 0, budgets, nil
	}
	curves := make([][]CapPoint, len(idxs))
	for j, i := range idxs {
		c, err := e.ServerCapCurve(i)
		if err != nil {
			return 0, 0, nil, err
		}
		curves[j] = c
	}
	b, perf, grid := ApportionCurves(clusterCapW, e.cfg.HW.PIdleWatts, curves)
	for j, i := range idxs {
		budgets[i] = b[j]
	}
	e.utilCache[key] = utilityCacheEntry{perf: perf, grid: grid, budgets: budgets}
	return perf, grid, budgets, nil
}

// Apportion returns the per-server budget vector the strategy would
// grant at one cap point: clusterCapW split across the live servers,
// dropped servers at zero. This is the decision the networked control
// plane replicates over RPC; exposing it lets the parity tests compare
// the two watt for watt. Consolidation plans placement, not budgets,
// and is not apportionable.
func (e *Evaluator) Apportion(strat Strategy, clusterCapW float64, alive []bool) ([]float64, error) {
	switch strat {
	case EqualRAPL, EqualOurs:
		budgets := make([]float64, len(e.cfg.Mixes))
		n := e.aliveCount(alive)
		if n == 0 {
			return budgets, nil
		}
		per := clusterCapW / float64(n)
		for i := range e.cfg.Mixes {
			if isAlive(alive, i) {
				budgets[i] = per
			}
		}
		return budgets, nil
	case UtilityOurs:
		_, _, budgets, err := e.utilityCachedStep(clusterCapW, alive)
		if err != nil {
			return nil, err
		}
		return append([]float64(nil), budgets...), nil
	default:
		return nil, fmt.Errorf("cluster: strategy %v apportions no per-server budgets", strat)
	}
}
