package cluster

import (
	"math"
	"testing"

	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

// capRamp builds an n-point cap schedule sweeping [loW, hiW] at stepS
// resolution.
func capRamp(n int, stepS, loW, hiW float64) []trace.Point {
	pts := make([]trace.Point, n)
	for i := range pts {
		frac := float64(i) / float64(n-1)
		pts[i] = trace.Point{T: float64(i) * stepS, V: loW + frac*(hiW-loW)}
	}
	return pts
}

func testEvaluator(t *testing.T, servers int, dropouts []Dropout) *Evaluator {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	ev, err := NewEvaluator(Config{HW: hw, Library: lib, Mixes: assign, Dropouts: dropouts})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// Apportioned budgets must cover the fleet, grant nothing to dropped
// servers, and never exceed the cluster cap in sum.
func TestApportionInvariants(t *testing.T) {
	ev := testEvaluator(t, 5, nil)
	alive := []bool{true, false, true, true, false}
	for _, strat := range []Strategy{EqualOurs, UtilityOurs} {
		for _, capW := range []float64{120, 300, 500, 900} {
			budgets, err := ev.Apportion(strat, capW, alive)
			if err != nil {
				t.Fatalf("%v cap %g: %v", strat, capW, err)
			}
			if len(budgets) != 5 {
				t.Fatalf("%v: %d budgets for 5 servers", strat, len(budgets))
			}
			var sum float64
			for i, b := range budgets {
				if !alive[i] && b != 0 {
					t.Errorf("%v cap %g: dropped server %d granted %g W", strat, capW, i, b)
				}
				sum += b
			}
			if sum > capW+1e-6 {
				t.Errorf("%v: budgets sum %g exceed cluster cap %g", strat, sum, capW)
			}
		}
	}
}

// The utility DP exposed through Apportion must grant exactly the
// budgets whose plans Evaluate scores: re-planning each granted budget
// must reproduce the step's performance and grid draw.
func TestApportionMatchesUtilityStep(t *testing.T) {
	ev := testEvaluator(t, 4, nil)
	for _, capW := range []float64{250, 400, 650} {
		perf, grid, budgets, err := ev.utilityCachedStep(capW, nil)
		if err != nil {
			t.Fatal(err)
		}
		var perf2, grid2 float64
		for i, b := range budgets {
			p, g, err := ev.PlanServer(i, policy.AppResESDAware, b)
			if err != nil {
				t.Fatal(err)
			}
			perf2 += p
			grid2 += g
		}
		if math.Abs(perf-perf2) > 1e-9 || math.Abs(grid-grid2) > 1e-9 {
			t.Errorf("cap %g: DP scored perf=%g grid=%g but granted budgets plan to perf=%g grid=%g",
				capW, perf, grid, perf2, grid2)
		}
	}
}

// Evaluate must record one budget vector per replayed point, equal to
// what Apportion decides at the same instant — the oracle contract the
// control-plane parity tests lean on.
func TestEvaluateBudgetSeries(t *testing.T) {
	ev := testEvaluator(t, 4, []Dropout{{Server: 1, FromT: 600, ToT: 1200}})
	caps := capRamp(8, 300, 700, 400)
	for _, strat := range []Strategy{EqualOurs, UtilityOurs} {
		res, err := ev.Evaluate(caps, strat)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.BudgetSeries) != len(caps) {
			t.Fatalf("%v: %d budget vectors for %d points", strat, len(res.BudgetSeries), len(caps))
		}
		for s, cp := range caps {
			want, err := ev.Apportion(strat, cp.V, ev.aliveAt(cp.T))
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if res.BudgetSeries[s][i] != want[i] {
					t.Fatalf("%v step %d server %d: Evaluate granted %g, Apportion says %g",
						strat, s, i, res.BudgetSeries[s][i], want[i])
				}
			}
		}
		if res.Reapportions != 2 {
			t.Errorf("%v: %d reapportions, want 2 (dropout + return)", strat, res.Reapportions)
		}
	}
}
