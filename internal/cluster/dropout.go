package cluster

import (
	"fmt"
	"strings"

	"powerstruggle/internal/faults"
)

// Dropout marks one server unreachable for a window of the replayed cap
// schedule — a crash, a maintenance pull, a network partition. Its
// applications go down with it (this layer has no migration on failure;
// Consolidation+Migration replans placement only among the survivors),
// and the cluster manager re-apportions the budget across the remaining
// servers for the duration.
type Dropout struct {
	// Server indexes Config.Mixes.
	Server int
	// FromT and ToT bound the window; the server is out for
	// FromT <= t < ToT.
	FromT float64
	ToT   float64
}

// validateDropouts checks the windows against the fleet.
func validateDropouts(cfg Config) error {
	for i, d := range cfg.Dropouts {
		if d.Server < 0 || d.Server >= len(cfg.Mixes) {
			return fmt.Errorf("cluster: dropout %d targets server %d of %d", i, d.Server, len(cfg.Mixes))
		}
		if d.ToT <= d.FromT {
			return fmt.Errorf("cluster: dropout %d window [%g, %g) is empty", i, d.FromT, d.ToT)
		}
	}
	return nil
}

// aliveAt returns the per-server liveness mask at time t, or nil when
// every server is up (the fast path the fault-free replay stays on).
func (e *Evaluator) aliveAt(t float64) []bool {
	if len(e.cfg.Dropouts) == 0 {
		return nil
	}
	var alive []bool
	for _, d := range e.cfg.Dropouts {
		if t >= d.FromT && t < d.ToT {
			if alive == nil {
				alive = make([]bool, len(e.cfg.Mixes))
				for i := range alive {
					alive[i] = true
				}
			}
			alive[d.Server] = false
		}
	}
	return alive
}

// maskKey renders a liveness mask as a cache key ("" = all alive).
func maskKey(alive []bool) string {
	if alive == nil {
		return ""
	}
	var b strings.Builder
	for _, a := range alive {
		if a {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// aliveCount counts live servers (nil mask = everyone).
func (e *Evaluator) aliveCount(alive []bool) int {
	if alive == nil {
		return len(e.cfg.Mixes)
	}
	n := 0
	for _, a := range alive {
		if a {
			n++
		}
	}
	return n
}

// isAlive reads the mask with the nil-means-everyone convention.
func isAlive(alive []bool, i int) bool { return alive == nil || alive[i] }

// noteTransitions logs dropout/return transitions between consecutive
// cap points and reports whether the alive set changed (a budget
// re-apportioning).
func (e *Evaluator) noteTransitions(t float64, prev, cur []bool) bool {
	changed := false
	for i := range e.cfg.Mixes {
		was, is := isAlive(prev, i), isAlive(cur, i)
		if was == is {
			continue
		}
		changed = true
		e.noteTransitionEvent(t, i, is)
		if e.flog == nil {
			e.flog = faults.NewLog(0)
		}
		if is {
			e.flog.Append(faults.Event{T: t, Kind: "server-return", Target: fmt.Sprintf("server-%d", i),
				Detail: "server back; re-apportioning cluster budget"})
		} else {
			e.flog.Append(faults.Event{T: t, Kind: "server-dropout", Target: fmt.Sprintf("server-%d", i),
				Detail: "server lost with its applications; re-apportioning cluster budget across survivors"})
		}
	}
	return changed
}

// FaultLog exposes the evaluator's dropout event log (nil when no
// transition happened).
func (e *Evaluator) FaultLog() *faults.Log { return e.flog }

// FaultEvents returns the logged dropout/return events in order.
func (e *Evaluator) FaultEvents() []faults.Event {
	if e.flog == nil {
		return nil
	}
	return e.flog.Events()
}
