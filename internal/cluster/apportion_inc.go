package cluster

import "math"

// Apportioner is the incremental fast path for ApportionCurves: it
// caches the DP's per-member prefix layers between calls and replays
// only the layers at and after the first member whose curve changed.
//
// The cache exploits a structural property of the DP: the value table
// best[l] after processing members 0..i depends only on those members'
// curves and on lower budget indices — never on the level bound the
// call happened to run with. Layers are therefore kept at a high-water
// level count; a cap change alone (different reconstruction start
// index) costs zero recompute, and when k of n member curves change
// between intervals only the layers from the first change onward are
// rebuilt. Because every retained column was produced by the exact
// arithmetic ApportionCurves would run, the budgets, perf, and grid
// draw returned are bit-identical to the full DP by construction —
// TestApportionerMatchesFullDP holds the two together.
//
// The zero value is ready to use. Not safe for concurrent use.
type Apportioner struct {
	floorW float64
	// curves holds a defensive snapshot of each member's curve as of
	// the last DP run, for change detection.
	curves [][]CapPoint
	// layers[i] is the DP value vector after processing member i, and
	// choices[i][l] the curve index member i takes at budget level l;
	// both span [0, hiLevels).
	layers   [][]float64
	choices  [][]int
	hiLevels int
	// recomputed counts the member layers rebuilt by the last call.
	recomputed int
}

// LastRecomputed reports how many member layers the last Apportion
// call had to rebuild (0 when only the cap moved).
func (a *Apportioner) LastRecomputed() int { return a.recomputed }

// curveChanged reports whether cur differs from the cached snapshot.
func curveChanged(snap, cur []CapPoint) bool {
	if len(snap) != len(cur) {
		return true
	}
	for i := range cur {
		if snap[i] != cur[i] {
			return true
		}
	}
	return false
}

// Apportion is ApportionCurves with the incremental cache. Same
// contract, bit-identical results.
func (a *Apportioner) Apportion(clusterCapW, floorW float64, curves [][]CapPoint) (budgets []float64, perf, gridW float64) {
	n := len(curves)
	a.recomputed = 0
	budgets = make([]float64, n)
	if n == 0 {
		return budgets, 0, 0
	}
	capQ := math.Floor(clusterCapW/serverCapStepW) * serverCapStepW
	if capQ < floorW*float64(n) {
		// Not even the idle floors fit; no DP ran, so the cache keeps
		// whatever validity it had.
		per := capQ / float64(n)
		for i := range budgets {
			budgets[i] = per
		}
		return budgets, 0, capQ
	}
	spare := capQ - floorW*float64(n)
	levels := int(spare/serverCapStepW) + 1

	// A floor change reprices every curve point; drop the whole cache.
	if floorW != a.floorW {
		a.curves = a.curves[:0]
		a.floorW = floorW
	}
	// firstDirty is the first member whose cached layer cannot be
	// reused: its curve changed, or it was never computed. Members past
	// a dirty one are rebuilt too (their layers chain off its output).
	firstDirty := n
	for i := 0; i < n; i++ {
		if i >= len(a.curves) || curveChanged(a.curves[i], curves[i]) {
			firstDirty = i
			break
		}
	}
	for len(a.curves) < n {
		a.curves = append(a.curves, nil)
		a.layers = append(a.layers, nil)
		a.choices = append(a.choices, nil)
	}
	a.curves = a.curves[:n]
	a.layers = a.layers[:n]
	a.choices = a.choices[:n]

	// Grow the high-water level count first: the clean prefix extends
	// its columns in place (each new column of layer i reads only
	// layer i-1, which is extended by the time we get there), so a cap
	// increase never invalidates unchanged members.
	if levels > a.hiLevels {
		zero := make([]float64, levels)
		prev := zero
		for i := 0; i < firstDirty; i++ {
			a.layers[i] = append(a.layers[i], make([]float64, levels-a.hiLevels)...)
			a.choices[i] = append(a.choices[i], make([]int, levels-a.hiLevels)...)
			a.dpColumns(i, curves[i], prev, a.hiLevels, levels)
			prev = a.layers[i]
		}
		a.hiLevels = levels
	}
	// Rebuild the dirty suffix over the full high-water range.
	prev := make([]float64, a.hiLevels)
	if firstDirty > 0 {
		prev = a.layers[firstDirty-1]
	}
	for i := firstDirty; i < n; i++ {
		a.recomputed++
		a.curves[i] = append(a.curves[i][:0], curves[i]...)
		a.layers[i] = append(a.layers[i][:0], make([]float64, a.hiLevels)...)
		a.choices[i] = append(a.choices[i][:0], make([]int, a.hiLevels)...)
		a.dpColumns(i, curves[i], prev, 0, a.hiLevels)
		prev = a.layers[i]
	}

	// Reconstruction: identical to ApportionCurves, starting at this
	// call's level bound.
	l := levels - 1
	for i := n - 1; i >= 0; i-- {
		k := a.choices[i][l]
		budgets[i] = curves[i][k].CapW
		perf += curves[i][k].Perf
		gridW += curves[i][k].GridW
		l -= k
	}
	return budgets, perf, gridW
}

// dpColumns fills member i's value and choice columns [lo, hi) from
// the previous member's layer — the inner loop of ApportionCurves,
// verbatim, so retained columns are bit-identical to the full DP's.
func (a *Apportioner) dpColumns(i int, curve []CapPoint, prev []float64, lo, hi int) {
	layer, cho := a.layers[i], a.choices[i]
	for l := lo; l < hi; l++ {
		bestV, bestK := math.Inf(-1), 0
		kMax := l
		if kMax >= len(curve) {
			kMax = len(curve) - 1
		}
		for k := 0; k <= kMax; k++ {
			if v := prev[l-k] + curve[k].Perf; v > bestV {
				bestV, bestK = v, k
			}
		}
		layer[l] = bestV
		cho[l] = bestK
	}
}
