// Package cluster evaluates the paper's Section IV-D: a cluster manager
// replaying peak-shaving power caps over a fleet of shared servers, under
// three strategies — Equal(RAPL), the state-of-the-art that evenly splits
// the cluster cap and enforces each server's share with RAPL; Equal(Ours),
// the same split with the paper's App+Res+ESD-Aware policy inside each
// server; and Consolidation+Migration(no cap), which powers only as many
// servers as the budget allows and migrates applications onto them
// without capping any active server.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"powerstruggle/internal/esd"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/trace"
	"powerstruggle/internal/workload"
)

// Strategy enumerates the cluster power-management strategies of Fig 12.
type Strategy int

// The strategies of Section IV-D.
const (
	// EqualRAPL evenly apportions the cluster cap and caps each server
	// with RAPL (the Dynamo-style state of the art).
	EqualRAPL Strategy = iota
	// EqualOurs evenly apportions the cluster cap and mediates each
	// server's power struggle with App+Res+ESD-Aware.
	EqualOurs
	// ConsolidateMigrate powers only as many servers as the budget
	// allows, migrating applications onto them, and caps none of them.
	ConsolidateMigrate
)

// String names the strategy as Fig. 12 does.
func (s Strategy) String() string {
	switch s {
	case EqualRAPL:
		return "Equal(RAPL)"
	case EqualOurs:
		return "Equal(Ours)"
	case ConsolidateMigrate:
		return "Consolidation+Migration(no cap)"
	case UtilityOurs:
		return "Utility(Ours)"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config describes the evaluated cluster.
type Config struct {
	// HW is the per-server platform.
	HW simhw.Config
	// Library resolves application profiles.
	Library *workload.Library
	// Mixes assigns one two-application mix per server; its length is
	// the cluster size.
	Mixes []workload.Mix
	// ESDSpec equips every server with a battery for EqualOurs (zero
	// value: the paper's lead-acid at 300 kJ).
	ESDSpec esd.Spec
	// CapQuantW rounds per-server caps for plan memoization (default
	// 0.5 W).
	CapQuantW float64
	// InterferencePenalty is the per-co-runner slowdown consolidation
	// pays for every application packed beyond one per socket (default
	// 0.15, the range hardware co-location studies report for
	// cache-sensitive pairs).
	InterferencePenalty float64
	// BatteryServers, when non-nil, marks which servers carry an ESD
	// (length must match Mixes). nil means every server has one — the
	// paper's setup.
	BatteryServers []bool
	// Dropouts schedules mid-trace server losses; the evaluator detects
	// them at each cap point and re-apportions the budget across the
	// survivors.
	Dropouts []Dropout
	// Telemetry, when non-nil, instruments the replay: per-server budget
	// gauges, reapportion and cap-violation counters, and dropout/return
	// instants on the cluster trace track. nil replays uninstrumented
	// with identical results.
	Telemetry *telemetry.Hub
}

// hasBattery reports whether server i carries an ESD.
func (c Config) hasBattery(i int) bool {
	if c.BatteryServers == nil {
		return true
	}
	if i < 0 || i >= len(c.BatteryServers) {
		return false
	}
	return c.BatteryServers[i]
}

func (c Config) capQuant() float64 {
	if c.CapQuantW > 0 {
		return c.CapQuantW
	}
	return 0.5
}

// Result is one strategy's outcome over a cap schedule.
type Result struct {
	Strategy Strategy
	// PerfSeries is the aggregate normalized performance over time
	// (sum over servers of the objective (1), so "all applications
	// uncapped everywhere" scores 2 x servers).
	PerfSeries []trace.Point
	// GridSeries is the cluster grid draw over time.
	GridSeries []trace.Point
	// AvgPerfFrac is mean aggregate performance normalized to the
	// uncapped cluster (1.0 = no caps, Fig. 12b's y-axis).
	AvgPerfFrac float64
	// EnergyJ is total grid energy over the schedule.
	EnergyJ float64
	// Efficiency is normalized performance delivered per kilojoule of
	// granted cap energy — the paper's "performance per available
	// watt". Strategies share the cap schedule, so this ranks exactly
	// as AvgPerfFrac but is the quantity the efficiency claims quote.
	Efficiency float64
	// EnergyEfficiency is normalized performance per kilojoule of
	// energy actually consumed; consolidation shines here because it
	// sheds whole idle floors.
	EnergyEfficiency float64
	// CapViolations counts steps where cluster draw exceeded the cap.
	CapViolations int
	// Reapportions counts the alive-set transitions (server dropouts
	// and returns) that forced a budget re-apportioning mid-trace.
	Reapportions int
	// BudgetSeries records, for every replayed cap point, the
	// per-server budget the strategy granted (zero for dropped
	// servers). nil entries for Consolidation+Migration, which plans
	// placement rather than budgets. This is the oracle sequence the
	// networked control plane must reproduce watt for watt.
	BudgetSeries [][]float64
}

// serverPlanKey memoizes per-server policy planning.
type serverPlanKey struct {
	mixID   int
	kind    policy.Kind
	capW    float64
	battery bool
}

type serverPlan struct {
	perf  float64
	gridW float64
	ok    bool
}

// Evaluator replays cap schedules against the configured cluster.
//
// Concurrency: PlanServer and ServerCapCurve are safe for concurrent
// use (networked agents share one evaluator as their backend); Evaluate
// and Apportion are single-threaded replay drivers and must not run
// concurrently with each other.
type Evaluator struct {
	cfg Config
	// planMu guards the plan memo; agent backends plan concurrently.
	planMu    sync.Mutex
	cache     map[serverPlanKey]serverPlan
	utilCache map[utilKey]utilityCacheEntry
	flog      *faults.Log
	tel       clusterTel
}

// NewEvaluator builds an evaluator, validating the configuration.
func NewEvaluator(cfg Config) (*Evaluator, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("cluster: config needs the application library")
	}
	if len(cfg.Mixes) == 0 {
		return nil, fmt.Errorf("cluster: no servers (empty mix assignment)")
	}
	if cfg.BatteryServers != nil && len(cfg.BatteryServers) != len(cfg.Mixes) {
		return nil, fmt.Errorf("cluster: %d battery flags for %d servers", len(cfg.BatteryServers), len(cfg.Mixes))
	}
	if cfg.ESDSpec.CapacityJ == 0 {
		cfg.ESDSpec = esd.LeadAcid(300e3)
	}
	if err := cfg.ESDSpec.Validate(); err != nil {
		return nil, err
	}
	if err := validateDropouts(cfg); err != nil {
		return nil, err
	}
	return &Evaluator{
		cfg:   cfg,
		cache: make(map[serverPlanKey]serverPlan),
		tel:   newClusterTel(cfg.Telemetry),
	}, nil
}

// Servers returns the cluster size.
func (e *Evaluator) Servers() int { return len(e.cfg.Mixes) }

// HW returns the per-server platform configuration.
func (e *Evaluator) HW() simhw.Config { return e.cfg.HW }

// PlanServer plans server i under capW with the given per-server policy
// and returns the normalized performance and grid draw the plan
// delivers. It is the networked agent's backend — the same memoized
// planning the replay uses, safe for concurrent use.
func (e *Evaluator) PlanServer(i int, kind policy.Kind, capW float64) (perf, gridW float64, err error) {
	if i < 0 || i >= len(e.cfg.Mixes) {
		return 0, 0, fmt.Errorf("cluster: server %d of %d", i, len(e.cfg.Mixes))
	}
	p, err := e.planServer(e.cfg.Mixes[i], kind, capW, e.cfg.hasBattery(i))
	if err != nil {
		return 0, 0, err
	}
	return p.perf, p.gridW, nil
}

// UncappedServerW returns one server's draw with its mix running
// unconstrained.
func (e *Evaluator) UncappedServerW(mix workload.Mix) (float64, error) {
	a, b, err := e.cfg.Library.MixProfiles(mix)
	if err != nil {
		return 0, err
	}
	return e.cfg.HW.ServerPowerWatts([]float64{a.NoCapPower(e.cfg.HW), b.NoCapPower(e.cfg.HW)}), nil
}

// UncappedClusterW returns the fleet's unconstrained draw, the reference
// peak Fig. 12a shaves.
func (e *Evaluator) UncappedClusterW() (float64, error) {
	var total float64
	for _, m := range e.cfg.Mixes {
		w, err := e.UncappedServerW(m)
		if err != nil {
			return 0, err
		}
		total += w
	}
	return total, nil
}

// planServer plans one server under one cap with one per-server policy,
// memoized on the quantized cap. Safe for concurrent use: the whole
// plan-or-reuse step runs under planMu, so two agents asking for the
// same cap share one plan instead of racing to build it.
func (e *Evaluator) planServer(mix workload.Mix, kind policy.Kind, capW float64, battery bool) (serverPlan, error) {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	// Quantize the cap downward (never plan for more power than granted)
	// and bound it at the nameplate: higher caps cannot bind.
	if nameplate := e.cfg.HW.MaxServerWatts(); capW > nameplate {
		capW = nameplate
	}
	q := e.cfg.capQuant()
	key := serverPlanKey{mixID: mix.ID, kind: kind, capW: math.Floor(capW/q) * q, battery: battery}
	if p, ok := e.cache[key]; ok {
		return p, nil
	}
	a, b, err := e.cfg.Library.MixProfiles(mix)
	if err != nil {
		return serverPlan{}, err
	}
	var dev *esd.Device
	if kind == policy.AppResESDAware && battery {
		// Steady-state planning: the schedule is energy-balanced per
		// period, so a mid-charge device characterizes sustained
		// operation.
		dev, err = esd.NewDevice(e.cfg.ESDSpec, 0.6)
		if err != nil {
			return serverPlan{}, err
		}
	}
	dec, err := policy.Plan(kind, policy.Context{
		HW:       e.cfg.HW,
		CapW:     key.capW,
		Profiles: []*workload.Profile{a, b},
		Library:  e.cfg.Library,
		Device:   dev,
	})
	if err != nil {
		// Caps below the idle floor (or otherwise infeasible) deliver
		// nothing but still draw the idle floor.
		// Using key.capW (not the raw cap) keeps the memoized draw
		// valid for every cap that quantizes to this entry.
		p := serverPlan{perf: 0, gridW: math.Min(key.capW, e.cfg.HW.PIdleWatts), ok: false}
		e.cache[key] = p
		return p, nil
	}
	grid := gridDraw(e.cfg.HW, dec)
	p := serverPlan{perf: dec.Schedule.TotalPerf, gridW: grid, ok: true}
	e.cache[key] = p
	return p, nil
}

// gridDraw estimates a schedule's time-averaged grid draw.
func gridDraw(hw simhw.Config, dec policy.Decision) float64 {
	s := dec.Schedule
	if s.PeriodS <= 0 {
		return hw.PIdleWatts
	}
	var energy float64
	for _, seg := range s.Segments {
		w := hw.PIdleWatts
		if !seg.Sleep && len(seg.Run) > 0 {
			w += hw.PCmWatts
		}
		if seg.ChargeW > 0 {
			w += seg.ChargeW
		}
		if seg.DischargeW > 0 {
			w -= seg.DischargeW
		}
		energy += w * seg.Seconds
	}
	// Application dynamic draw is already time-averaged in AppBudgetW.
	for _, b := range s.AppBudgetW {
		energy += b * s.PeriodS
	}
	return energy / s.PeriodS
}

// Evaluate replays a cluster cap schedule under one strategy.
func (e *Evaluator) Evaluate(caps []trace.Point, strat Strategy) (Result, error) {
	if len(caps) == 0 {
		return Result{}, fmt.Errorf("cluster: empty cap schedule")
	}
	res := Result{Strategy: strat}
	uncapped := 2 * float64(len(e.cfg.Mixes)) // objective (1) with all apps at 1.0

	var perfSum float64
	var prevAlive []bool
	for i, cp := range caps {
		alive := e.aliveAt(cp.T)
		if e.noteTransitions(cp.T, prevAlive, alive) {
			res.Reapportions++
			e.tel.reapportions.Inc()
		}
		prevAlive = alive
		var perf, grid float64
		var budgets []float64
		var err error
		switch strat {
		case EqualRAPL:
			perf, grid, err = e.equalStep(cp.V, policy.UtilUnaware, alive)
		case EqualOurs:
			perf, grid, err = e.equalStep(cp.V, policy.AppResESDAware, alive)
		case ConsolidateMigrate:
			perf, grid, err = e.consolidateStep(cp.V, alive)
		case UtilityOurs:
			perf, grid, budgets, err = e.utilityCachedStep(cp.V, alive)
		default:
			err = fmt.Errorf("cluster: unknown strategy %v", strat)
		}
		if err != nil {
			return Result{}, err
		}
		if budgets == nil && (strat == EqualRAPL || strat == EqualOurs) {
			budgets, err = e.Apportion(strat, cp.V, alive)
			if err != nil {
				return Result{}, err
			}
		}
		if budgets != nil {
			// The utility cache owns its vector; copy before exposing.
			budgets = append([]float64(nil), budgets...)
		}
		res.BudgetSeries = append(res.BudgetSeries, budgets)
		res.PerfSeries = append(res.PerfSeries, trace.Point{T: cp.T, V: perf})
		res.GridSeries = append(res.GridSeries, trace.Point{T: cp.T, V: grid})
		violated := grid > cp.V+1e-6
		if violated {
			res.CapViolations++
		}
		e.noteStep(cp.T, cp.V, grid, alive, violated, budgets)
		perfSum += perf
		var dt float64
		if i+1 < len(caps) {
			dt = caps[i+1].T - cp.T
		} else if i > 0 {
			dt = cp.T - caps[i-1].T
		}
		res.EnergyJ += grid * dt
	}
	res.AvgPerfFrac = perfSum / float64(len(caps)) / uncapped
	dur := caps[len(caps)-1].T - caps[0].T
	var capEnergy float64
	for i, cp := range caps {
		var dt float64
		if i+1 < len(caps) {
			dt = caps[i+1].T - cp.T
		} else if i > 0 {
			dt = cp.T - caps[i-1].T
		}
		capEnergy += math.Min(cp.V, uncappedDrawGuard(e)) * dt
	}
	if capEnergy > 0 {
		res.Efficiency = (perfSum / float64(len(caps)) * dur) / (capEnergy / 1000)
	}
	if res.EnergyJ > 0 {
		res.EnergyEfficiency = (perfSum / float64(len(caps)) * dur) / (res.EnergyJ / 1000)
	}
	return res, nil
}

// equalStep evenly splits the cluster cap across the live servers and
// plans each with the given per-server policy. Dropped servers host
// nothing and draw nothing; their share flows to the survivors.
func (e *Evaluator) equalStep(clusterCapW float64, kind policy.Kind, alive []bool) (perf, grid float64, err error) {
	n := e.aliveCount(alive)
	if n == 0 {
		return 0, 0, nil
	}
	per := clusterCapW / float64(n)
	for i, m := range e.cfg.Mixes {
		if !isAlive(alive, i) {
			continue
		}
		p, err := e.planServer(m, kind, per, e.cfg.hasBattery(i))
		if err != nil {
			return 0, 0, err
		}
		perf += p.perf
		grid += p.gridW
	}
	return perf, grid, nil
}

// uncappedDrawGuard bounds cap energy accounting at the fleet's
// unconstrained draw: power granted beyond what the fleet can use is not
// "available" in any meaningful sense.
func uncappedDrawGuard(e *Evaluator) float64 {
	w, err := e.UncappedClusterW()
	if err != nil {
		return math.Inf(1)
	}
	return w
}
