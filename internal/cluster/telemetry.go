package cluster

import (
	"strconv"

	"powerstruggle/internal/telemetry"
)

// clusterTel is the evaluator's pre-resolved instrument set. The
// evaluator replays cap schedules offline, so the interesting signals
// are per-server budget grants, alive-set churn, and cap violations —
// the cluster-level counterparts of Fig. 12's peak-shaving replay.
type clusterTel struct {
	enabled bool
	tracer  *telemetry.Tracer

	steps         *telemetry.Counter
	reapportions  *telemetry.Counter
	capViolations *telemetry.Counter
	aliveServers  *telemetry.Gauge
	clusterCapW   *telemetry.Gauge
	clusterGridW  *telemetry.Gauge
	serverBudgetW *telemetry.GaugeVec
}

func newClusterTel(h *telemetry.Hub) clusterTel {
	reg := h.Registry()
	if reg == nil {
		return clusterTel{}
	}
	return clusterTel{
		enabled: true,
		tracer:  h.Tracer(),
		steps: reg.Counter("ps_cluster_steps_total",
			"Cap-schedule points replayed."),
		reapportions: reg.Counter("ps_cluster_reapportions_total",
			"Alive-set transitions (dropouts and returns) that re-apportioned the cluster budget."),
		capViolations: reg.Counter("ps_cluster_cap_violations_total",
			"Replay steps where cluster grid draw exceeded the granted cap."),
		aliveServers: reg.Gauge("ps_cluster_alive_servers",
			"Servers currently reachable at the replayed point."),
		clusterCapW: reg.Gauge("ps_cluster_cap_watts",
			"Cluster cap at the last replayed point."),
		clusterGridW: reg.Gauge("ps_cluster_grid_watts",
			"Cluster grid draw at the last replayed point."),
		serverBudgetW: reg.GaugeVec("ps_cluster_server_budget_watts",
			"Per-server budget granted at the last replayed point (0 while dropped out).", "server"),
	}
}

// noteStep records one replayed cap point's outcome. budgets, when
// non-nil, carries the strategy's actual per-server grants (the utility
// DP concentrates watts, so an even split would misreport it); nil
// falls back to the even split the budgetless strategies imply.
func (e *Evaluator) noteStep(t, capW, gridW float64, alive []bool, violated bool, budgets []float64) {
	if !e.tel.enabled {
		return
	}
	e.tel.steps.Inc()
	e.tel.clusterCapW.Set(capW)
	e.tel.clusterGridW.Set(gridW)
	n := e.aliveCount(alive)
	e.tel.aliveServers.Set(float64(n))
	var per float64
	if n > 0 {
		per = capW / float64(n)
	}
	for i := range e.cfg.Mixes {
		switch {
		case budgets != nil:
			e.tel.serverBudgetW.With(strconv.Itoa(i)).Set(budgets[i])
		case isAlive(alive, i):
			e.tel.serverBudgetW.With(strconv.Itoa(i)).Set(per)
		default:
			e.tel.serverBudgetW.With(strconv.Itoa(i)).Set(0)
		}
	}
	if violated {
		e.tel.capViolations.Inc()
	}
}

// noteTransitionEvent mirrors one dropout/return into the trace as an
// instant on the cluster track.
func (e *Evaluator) noteTransitionEvent(t float64, server int, returned bool) {
	if !e.tel.enabled {
		return
	}
	kind := "server-dropout"
	if returned {
		kind = "server-return"
	}
	e.tel.tracer.Instant(kind, telemetry.CatCluster, telemetry.TidClusterT, t,
		telemetry.A("server", server))
}
