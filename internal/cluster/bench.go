package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// This file is the apportioning-DP benchmark harness behind cmd/psbench
// and the dp_cells of the committed BENCH_ctrlplane.json baseline. It
// measures the planner, not the wire: the full ApportionCurves DP
// against the Apportioner's incremental fast path over the same
// deterministic curve-mutation stream, so the committed speedup is the
// one the coordinator actually sees when k of n learned curves move
// between intervals. Every interval the two paths' outputs are compared
// bit for bit — the cell is a correctness gate as much as a perf one.

// DPBenchCell is one (members, changed-per-interval) measurement — the
// unit committed to BENCH_ctrlplane.json's dp_cells.
type DPBenchCell struct {
	Members   int `json:"members"`
	Changed   int `json:"changed_per_interval"`
	Runs      int `json:"runs"`
	Intervals int `json:"intervals_per_run"`

	// FullNsPerInterval / IncNsPerInterval are the minimum across runs
	// of mean wall time per interval for the full DP and the
	// incremental apportioner over identical inputs.
	FullNsPerInterval int64 `json:"full_ns_per_interval"`
	IncNsPerInterval  int64 `json:"inc_ns_per_interval"`
	// MeanLayersRecomputed is the mean member layers the incremental
	// path rebuilt per interval — the structural sublinearity witness
	// (the full DP always rebuilds all Members layers). Deterministic:
	// the mutation stream is seeded.
	MeanLayersRecomputed float64 `json:"mean_layers_recomputed"`
	// Speedup is FullNsPerInterval / IncNsPerInterval.
	Speedup float64 `json:"speedup"`
}

// dpBenchCurve builds member i's curve at mutation version ver on the
// canonical 2 W grid: a saturating utility whose knee moves with
// (i, ver), so every mutation genuinely changes the DP's inputs.
func dpBenchCurve(i, ver int) []CapPoint {
	const floorW, nameplateW = 50.0, 130.0
	tau := 25 + float64((i*13+ver*29)%50)
	norm := 1 - math.Exp(-nameplateW/tau)
	var pts []CapPoint
	for c := floorW; c <= nameplateW; c += ServerCapStepW {
		pts = append(pts, CapPoint{CapW: c, Perf: (1 - math.Exp(-c/tau)) / norm, GridW: c})
	}
	return pts
}

// RunDPBench measures one cell: n member curves, k of them mutated per
// interval at seeded positions, the cluster cap cycling through a small
// deterministic band. Both paths run on identical inputs each interval
// and must agree bit for bit.
func RunDPBench(members, changed, runs, intervals int) (DPBenchCell, error) {
	if members <= 0 || changed < 0 || changed > members {
		return DPBenchCell{}, fmt.Errorf("cluster: dp bench %d members, %d changed", members, changed)
	}
	if runs <= 0 {
		runs = 5
	}
	if intervals <= 0 {
		intervals = 10
	}
	const floorW = 50.0
	curves := make([][]CapPoint, members)
	vers := make([]int, members)
	for i := range curves {
		curves[i] = dpBenchCurve(i, 0)
	}
	capAt := func(iv int) float64 {
		// Cycle below the warmup cap so the high-water layer cache is
		// exercised the way a live coordinator exercises it.
		return float64(members) * (85 + float64(iv%6))
	}

	var inc Apportioner
	rng := rand.New(rand.NewSource(1))
	// Warmup at the highest cap in the cycle: the incremental cache's
	// high-water level count is set once, as a long-lived coordinator's
	// would be.
	inc.Apportion(float64(members)*90, floorW, curves)

	cell := DPBenchCell{Members: members, Changed: changed, Runs: runs, Intervals: intervals}
	var recomputed int
	for run := 0; run < runs; run++ {
		var fullNs, incNs int64
		for iv := 0; iv < intervals; iv++ {
			for c := 0; c < changed; c++ {
				i := rng.Intn(members)
				vers[i]++
				curves[i] = dpBenchCurve(i, vers[i])
			}
			capW := capAt(run*intervals + iv)

			t0 := time.Now()
			ib, ip, ig := inc.Apportion(capW, floorW, curves)
			incNs += time.Since(t0).Nanoseconds()
			recomputed += inc.LastRecomputed()

			t0 = time.Now()
			fb, fp, fg := ApportionCurves(capW, floorW, curves)
			fullNs += time.Since(t0).Nanoseconds()

			if ip != fp || ig != fg {
				return DPBenchCell{}, fmt.Errorf("cluster: dp bench run %d iv %d: incremental (perf %g, grid %g) diverged from full (perf %g, grid %g)",
					run, iv, ip, ig, fp, fg)
			}
			for i := range fb {
				if ib[i] != fb[i] {
					return DPBenchCell{}, fmt.Errorf("cluster: dp bench run %d iv %d: member %d budget %g != full DP %g",
						run, iv, i, ib[i], fb[i])
				}
			}
		}
		fullMean := fullNs / int64(intervals)
		incMean := incNs / int64(intervals)
		if run == 0 || fullMean < cell.FullNsPerInterval {
			cell.FullNsPerInterval = fullMean
		}
		if run == 0 || incMean < cell.IncNsPerInterval {
			cell.IncNsPerInterval = incMean
		}
	}
	cell.MeanLayersRecomputed = float64(recomputed) / float64(runs*intervals)
	if cell.IncNsPerInterval > 0 {
		cell.Speedup = float64(cell.FullNsPerInterval) / float64(cell.IncNsPerInterval)
	}
	return cell, nil
}
