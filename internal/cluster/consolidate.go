package cluster

import (
	"fmt"
	"math"

	"powerstruggle/internal/workload"
)

// consolidateStep implements Consolidation+Migration(no cap): power the
// largest number of servers whose unconstrained draw fits the cluster
// cap, migrate every application onto them (deepening consolidation),
// and run uncapped. Powered-off servers draw nothing, which is the
// strategy's efficiency edge — it sheds whole P_idle + P_cm lumps — at
// the cost of direct-resource interference and migration feasibility
// the paper cautions about.
func (e *Evaluator) consolidateStep(clusterCapW float64, alive []bool) (perf, grid float64, err error) {
	n := e.aliveCount(alive)
	if n == 0 {
		return 0, 0, nil
	}
	apps, err := e.allApps(alive)
	if err != nil {
		return 0, 0, err
	}
	// With no cap enforced on active servers, the manager must budget
	// each one at nameplate: nothing stops an uncapped server from
	// spiking there, and the cluster cap is a hard (breaker/contract)
	// limit. This conservative sizing is the strategy's inherent cost.
	nameplate := e.cfg.HW.MaxServerWatts()
	kMax := int(clusterCapW / nameplate)
	if kMax > n {
		kMax = n
	}
	for k := kMax; k >= 1; k-- {
		p, g, ok := e.consolidateOnto(apps, k)
		if !ok {
			continue
		}
		if g <= clusterCapW {
			return p, g, nil
		}
	}
	// Even one active server exceeds the cap: the whole fleet idles off
	// (the strategy has no throttling knob).
	return 0, 0, nil
}

// allApps flattens the live servers' application population: a dropped
// server's applications went down with it and are not migration
// candidates.
func (e *Evaluator) allApps(alive []bool) ([]*workload.Profile, error) {
	var out []*workload.Profile
	for i, m := range e.cfg.Mixes {
		if !isAlive(alive, i) {
			continue
		}
		a, b, err := e.cfg.Library.MixProfiles(m)
		if err != nil {
			return nil, err
		}
		out = append(out, a, b)
	}
	return out, nil
}

// consolidateOnto packs the application population onto k servers and
// returns the aggregate normalized performance and grid draw. ok is
// false when the packing is infeasible (more applications per server
// than cores).
func (e *Evaluator) consolidateOnto(apps []*workload.Profile, k int) (perf, grid float64, ok bool) {
	hw := e.cfg.HW
	perServer := int(math.Ceil(float64(len(apps)) / float64(k)))
	if perServer > hw.TotalCores() {
		return 0, 0, false
	}
	// Round-robin placement keeps mixes' diversity spread.
	for s := 0; s < k; s++ {
		var hosted []*workload.Profile
		for i := s; i < len(apps); i += k {
			hosted = append(hosted, apps[i])
		}
		if len(hosted) == 0 {
			continue
		}
		p, g := e.serverUnderConsolidation(hosted)
		perf += p
		grid += g
	}
	return perf, grid, true
}

// serverUnderConsolidation evaluates one uncapped server hosting an
// arbitrary number of applications: cores are divided evenly, DRAM
// channels are shared by the applications mapped to each, and every
// application runs at top frequency.
func (e *Evaluator) serverUnderConsolidation(hosted []*workload.Profile) (perf, grid float64) {
	hw := e.cfg.HW
	coresEach := hw.TotalCores() / len(hosted)
	if coresEach < 1 {
		coresEach = 1
	}
	appsPerChannel := float64(len(hosted)) / float64(hw.MemChannels)
	if appsPerChannel < 1 {
		appsPerChannel = 1
	}
	// Co-location beyond the one-application-per-socket baseline adds
	// direct-resource interference (LLC thrash, scheduler and prefetcher
	// contention) the analytic rooflines do not see; each extra
	// co-runner compounds a slowdown.
	interference := 1.0
	if extra := len(hosted) - hw.Sockets; extra > 0 {
		interference = math.Pow(1-e.interferencePenalty(), float64(extra))
	}
	var appW []float64
	for _, p := range hosted {
		shrunk := *p
		if coresEach < shrunk.MaxCores {
			shrunk.MaxCores = coresEach
		}
		// Sharing a channel divides the per-application memory
		// roofline: the same effect as proportionally heavier traffic.
		shrunk.MemBytesPerBeat = p.MemBytesPerBeat * appsPerChannel
		k := shrunk.NoCapKnobs(hw)
		rate := shrunk.Rate(hw, k) * interference
		if nc := p.NoCapRate(hw); nc > 0 {
			perf += rate / nc
		}
		// Power: the shrunk configuration's draw, with the channel
		// draw de-duplicated across its sharers.
		w := float64(k.Cores)*hw.CoreWatts(k.FreqGHz, shrunk.CPUActivity) +
			shrunk.MemDrawWatts(hw, k)/appsPerChannel
		appW = append(appW, w)
	}
	return perf, hw.ServerPowerWatts(appW)
}

// interferencePenalty returns the per-co-runner slowdown applied beyond
// the baseline placement.
func (e *Evaluator) interferencePenalty() float64 {
	if e.cfg.InterferencePenalty > 0 {
		return e.cfg.InterferencePenalty
	}
	return 0.15
}

// ConsolidationInfeasible reports whether packing the population onto k
// servers violates the core budget — exported for tests and ablations.
func (e *Evaluator) ConsolidationInfeasible(k int) (bool, error) {
	if k <= 0 {
		return true, fmt.Errorf("cluster: %d servers", k)
	}
	apps, err := e.allApps(nil)
	if err != nil {
		return true, err
	}
	perServer := int(math.Ceil(float64(len(apps)) / float64(k)))
	return perServer > e.cfg.HW.TotalCores(), nil
}
