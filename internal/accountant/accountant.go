// Package accountant implements the paper's Accountant (Section III-C):
// the component that keeps track of the server power cap, the scheduled
// applications and their status, polls application power draw, and
// triggers power re-allocation and utility re-calibration on the four
// dynamic events — E1 cap change, E2 application arrival, E3 application
// departure, E4 significant drift between an application's draw and its
// allocated budget (load variation or phase change).
//
// Each trigger opens a re-allocation window in which the accountant
// re-calibrates utility curves (internal/cf) and asks the
// PowerAllocator (R1/R2) for a fresh plan the Coordinator then actuates
// (R3/R4). With a telemetry.Hub attached, every event, replan, and
// calibration is counted and the window is drawn as a plan span on the
// trace timeline (docs/METRICS.md); instrumentation never changes the
// simulation's outputs.
package accountant

import (
	"errors"
	"fmt"
	"math"
	"time"

	"powerstruggle/internal/allocator"
	"powerstruggle/internal/coordinator"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

// EventKind enumerates the paper's re-allocation triggers.
type EventKind int

// The events of Section III-C.
const (
	// EvCapChange is E1: the datacenter changed this server's budget.
	EvCapChange EventKind = iota
	// EvArrival is E2: a new application was scheduled here.
	EvArrival
	// EvDeparture is E3: an application finished and exited.
	EvDeparture
	// EvPhaseChange is E4: an application's draw drifted from its
	// allocation (load variation or phase change).
	EvPhaseChange
	// EvSLODegraded is an extension event: the admitted SLO floors
	// became infeasible under the current cap and the mediator fell
	// back to best-effort apportioning.
	EvSLODegraded
	// EvHeartbeatLoss is a robustness event: an application's delivered
	// heartbeat total stagnated past the staleness window, so its
	// utility measurements can no longer be trusted and the accountant
	// degrades to fair-share apportioning.
	EvHeartbeatLoss
	// EvHeartbeatRecovered marks heartbeats returning after a loss;
	// utility-aware apportioning resumes.
	EvHeartbeatRecovered
)

// String names the event as the paper does.
func (k EventKind) String() string {
	switch k {
	case EvCapChange:
		return "E1-cap-change"
	case EvArrival:
		return "E2-arrival"
	case EvDeparture:
		return "E3-departure"
	case EvPhaseChange:
		return "E4-phase-change"
	case EvSLODegraded:
		return "slo-degraded"
	case EvHeartbeatLoss:
		return "heartbeat-loss"
	case EvHeartbeatRecovered:
		return "heartbeat-recovered"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one logged trigger with its re-allocation outcome.
type Event struct {
	T    float64
	Kind EventKind
	// App names the application involved (empty for cap changes).
	App string
	// CapW is the cap in force after the event.
	CapW float64
	// Detail is a human-readable description.
	Detail string
}

// arrival is a scheduled application admission.
type arrival struct {
	at      float64
	profile *workload.Profile
	beats   float64
	obj     allocator.Objective
}

// capChange is a scheduled cap update.
type capChange struct {
	at   float64
	capW float64
}

// Config parameterizes the accountant simulation.
type Config struct {
	// HW is the platform.
	HW simhw.Config
	// Policy is the power-management scheme in force.
	Policy policy.Kind
	// Library backs Server+Res-Aware averaging and profile lookups.
	Library *workload.Library
	// InitialCapW is the cap before any scheduled change.
	InitialCapW float64
	// Device is the server's ESD, if any.
	Device *esd.Device
	// Coord carries coordinator tunables.
	Coord coordinator.Config
	// PollSeconds is the status-poll period (the paper polls on the
	// order of microseconds; the default here is one integration step).
	PollSeconds float64
	// ReallocSeconds is the latency of a full re-allocation (sampling,
	// estimation, actuation): the paper measures ~800 ms on its server.
	// Applications run under the previous plan (arrivals stay
	// suspended) until it elapses.
	ReallocSeconds float64
	// DriftFrac is the relative draw-vs-budget divergence that triggers
	// E4; 0 means 0.25.
	DriftFrac float64
	// StepSeconds is the integration step; 0 means 10 ms.
	StepSeconds float64
	// SampleEvery decimates the recorded series; 0 means 0.1 s.
	SampleEvery float64
	// Estimator, when non-nil, supplies learned utility curves at every
	// re-allocation (the paper's online calibration); nil plans from
	// the oracle model.
	Estimator CurveEstimator
	// HeartbeatStaleS is how long an application's delivered-beat total
	// may stagnate before the accountant declares its telemetry lost
	// and degrades to fair-share apportioning (utility measurements
	// from a silent application cannot be trusted); 0 means
	// DefaultHeartbeatStaleS. The check only runs when the coordinator
	// has fault injection enabled — a fault-free run cannot lose beats.
	HeartbeatStaleS float64
	// MaxEvents bounds the in-memory event log; the oldest entries are
	// evicted past the bound. 0 means DefaultMaxLog; negative means
	// unbounded.
	MaxEvents int
	// MaxSamples bounds the recorded timeline the same way.
	MaxSamples int
}

// Defaults for the robustness knobs.
const (
	// DefaultHeartbeatStaleS comfortably exceeds the ModeTime duty
	// period (2 s), so a legitimately OFF application is never declared
	// lost.
	DefaultHeartbeatStaleS = 5.0
	// DefaultMaxLog bounds the event and sample logs of a long-running
	// daemon.
	DefaultMaxLog = 4096
)

func (c Config) heartbeatStale() float64 {
	if c.HeartbeatStaleS > 0 {
		return c.HeartbeatStaleS
	}
	return DefaultHeartbeatStaleS
}

func (c Config) maxEvents() int {
	if c.MaxEvents != 0 {
		return c.MaxEvents
	}
	return DefaultMaxLog
}

func (c Config) maxSamples() int {
	if c.MaxSamples != 0 {
		return c.MaxSamples
	}
	return DefaultMaxLog
}

// CurveEstimator produces a utility curve for an application from
// online measurements — the Accountant-facing face of the
// collaborative-filtering pipeline.
type CurveEstimator interface {
	Curve(p *workload.Profile) (*workload.Curve, error)
}

func (c Config) driftFrac() float64 {
	if c.DriftFrac > 0 {
		return c.DriftFrac
	}
	return 0.25
}

// Sim is a scriptable accountant-driven server simulation.
type Sim struct {
	cfg      Config
	ex       *coordinator.Executor
	names    []string
	objs     []allocator.Objective
	anySLO   bool
	arrivals []arrival
	caps     []capChange
	// waiting holds admitted-but-unplaceable applications (direct
	// resources exhausted); they enter as earlier tenants depart.
	waiting []arrival

	events         []Event
	samples        []AppSample
	eventsDropped  int
	samplesDropped int

	pendingRealloc float64 // seconds left before the next plan lands
	reallocQueued  bool
	reallocStart   float64 // when the open window's first trigger fired
	lastPoll       float64

	tel simTel

	// Heartbeat-loss tracking (parallel to the active application set):
	// the last seen delivered-beat total, when it last advanced, and
	// whether the application is currently declared lost.
	hbTotal  []float64
	hbSeenAt []float64
	hbLost   []bool
	degraded bool
	lastHB   float64
}

// AppSample extends the executor sample with per-application identity and
// knob state, for Fig 11-style timelines.
type AppSample struct {
	T     float64
	CapW  float64
	GridW float64
	SoC   float64
	// Apps carries one entry per active application.
	Apps []AppState
}

// AppState is one application's observable state at a sample.
type AppState struct {
	Name    string
	PowerW  float64
	BudgetW float64
	Knobs   workload.Knobs
	Perf    float64 // schedule-predicted normalized perf
	// RateHz is the measured heartbeat rate over the monitor window.
	RateHz float64
}

// NewSim builds an accountant simulation.
func NewSim(cfg Config) (*Sim, error) {
	if cfg.Library == nil {
		return nil, fmt.Errorf("accountant: config needs the application library")
	}
	if cfg.InitialCapW <= 0 {
		return nil, fmt.Errorf("accountant: initial cap %.1f W is invalid", cfg.InitialCapW)
	}
	cc := cfg.Coord
	cc.HW = cfg.HW
	cc.CapW = cfg.InitialCapW
	ex, err := coordinator.NewExecutor(cc, cfg.Device)
	if err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, ex: ex}
	s.tel = newSimTel(cc.Telemetry)
	return s, nil
}

// AddArrival schedules an application to arrive at time at with beats of
// work (0 for endless), best-effort with unit weight.
func (s *Sim) AddArrival(at float64, p *workload.Profile, beats float64) error {
	return s.AddArrivalCritical(at, p, beats, 1, 0)
}

// AddArrivalCritical schedules an application with a weighted objective
// term and an SLO floor (the latency-critical admission of the
// weighted-objective extension).
func (s *Sim) AddArrivalCritical(at float64, p *workload.Profile, beats, weight, floorPerf float64) error {
	if p == nil {
		return fmt.Errorf("accountant: arrival needs a profile")
	}
	if at < 0 {
		return fmt.Errorf("accountant: arrival at %g s", at)
	}
	if weight <= 0 {
		return fmt.Errorf("accountant: %s: weight %g must be positive", p.Name, weight)
	}
	if floorPerf < 0 || floorPerf > 1 {
		return fmt.Errorf("accountant: %s: floor %g outside [0, 1]", p.Name, floorPerf)
	}
	s.arrivals = append(s.arrivals, arrival{
		at: at, profile: p, beats: beats,
		obj: allocator.Objective{Weight: weight, FloorPerf: floorPerf},
	})
	return nil
}

// AddCapChange schedules the server cap to become capW at time at (E1).
func (s *Sim) AddCapChange(at, capW float64) error {
	if capW <= 0 {
		return fmt.Errorf("accountant: cap change to %.1f W is invalid", capW)
	}
	s.caps = append(s.caps, capChange{at: at, capW: capW})
	return nil
}

// Events returns the logged events in time order.
func (s *Sim) Events() []Event { return append([]Event(nil), s.events...) }

// Samples returns the recorded timeline.
func (s *Sim) Samples() []AppSample { return append([]AppSample(nil), s.samples...) }

// replan runs the policy over the active applications and installs the
// new schedule. It plans against each application's *effective*
// (phase-resolved) profile — the re-calibration of utility curves the
// paper's E4 path performs — so a phase change converges to a matching
// allocation instead of re-triggering forever.
func (s *Sim) replan() error {
	if s.ex.Apps() == 0 {
		return nil
	}
	if s.tel.enabled {
		defer s.tel.observeReplan(time.Now())
	}
	profiles := make([]*workload.Profile, s.ex.Apps())
	for i := range profiles {
		profiles[i] = s.ex.Instance(i).Effective()
	}
	ctx := policy.Context{
		HW:       s.cfg.HW,
		CapW:     s.ex.Cap(),
		Profiles: profiles,
		Library:  s.cfg.Library,
		Device:   s.ex.Device(),
		Coord:    s.cfg.Coord,
	}
	if s.degraded {
		// With telemetry lost the utility measurements backing the
		// policy are untrustworthy: fall back to the fair equal split
		// and plan from static models only.
		dec, err := policy.Plan(policy.UtilUnaware, ctx)
		if err != nil {
			return err
		}
		return s.ex.SetSchedule(dec.Schedule)
	}
	if s.anySLO {
		ctx.Objectives = append([]allocator.Objective(nil), s.objs...)
	}
	if s.cfg.Estimator != nil {
		ctx.CurveOverride = func(i int, p *workload.Profile) *workload.Curve {
			var start time.Time
			if s.tel.enabled {
				start = time.Now()
			}
			// Estimation failures fall back (nil) to the policy's own
			// curve construction; they are not fatal.
			c, err := s.cfg.Estimator.Curve(p)
			if s.tel.enabled {
				s.tel.observeCalibration(start)
				s.tel.tracer.Instant("calibrate", telemetry.CatCalibrate,
					telemetry.TidAccountant, s.ex.Now(),
					telemetry.A("app", p.Name), telemetry.A("ok", err == nil))
			}
			if err != nil {
				return nil
			}
			return c
		}
	}
	dec, err := policy.Plan(s.cfg.Policy, ctx)
	if err != nil && ctx.Objectives != nil && errors.Is(err, allocator.ErrInfeasible) {
		// The floors no longer fit (typically after a cap drop):
		// degrade to best-effort rather than stalling the server.
		s.logEvent(EvSLODegraded, "", "SLO floors infeasible under the current cap; best-effort apportioning")
		ctx.Objectives = nil
		dec, err = policy.Plan(s.cfg.Policy, ctx)
	}
	if err != nil {
		return err
	}
	return s.ex.SetSchedule(dec.Schedule)
}

// tryAdmit places an arrival or, when the direct resources are
// exhausted, parks it on the waiting queue (the paper assumes sufficient
// direct resources; a real cluster scheduler would route elsewhere).
func (s *Sim) tryAdmit(a arrival) error {
	inst, err := workload.NewInstance(a.profile, a.beats)
	if err != nil {
		return err
	}
	if _, err := s.ex.AddApp(a.profile, inst); err != nil {
		s.waiting = append(s.waiting, a)
		s.logEvent(EvArrival, a.profile.Name, "no free direct resources; queued")
		return nil
	}
	s.names = append(s.names, a.profile.Name)
	s.objs = append(s.objs, a.obj)
	s.hbTotal = append(s.hbTotal, 0)
	s.hbSeenAt = append(s.hbSeenAt, s.ex.Now())
	s.hbLost = append(s.hbLost, false)
	if a.obj.Weight != 1 || a.obj.FloorPerf > 0 {
		s.anySLO = true
	}
	s.logEvent(EvArrival, a.profile.Name, "calibrating utilities and re-allocating")
	s.queueRealloc()
	return nil
}

// Waiting returns the number of admitted-but-unplaced applications.
func (s *Sim) Waiting() int { return len(s.waiting) }

// queueRealloc starts (or restarts) the re-allocation latency window.
func (s *Sim) queueRealloc() {
	if !s.reallocQueued {
		s.reallocStart = s.ex.Now()
	}
	s.pendingRealloc = s.cfg.ReallocSeconds
	s.reallocQueued = true
}

// logEvent records a trigger, evicting the oldest entries past the
// configured bound.
func (s *Sim) logEvent(kind EventKind, app, detail string) {
	if s.tel.enabled {
		s.tel.events.With(kind.String()).Inc()
		s.tel.tracer.Instant(kind.String(), telemetry.CatPlan, telemetry.TidAccountant,
			s.ex.Now(), telemetry.A("app", app), telemetry.A("detail", detail))
	}
	s.events = append(s.events, Event{T: s.ex.Now(), Kind: kind, App: app, CapW: s.ex.Cap(), Detail: detail})
	if max := s.cfg.maxEvents(); max > 0 && len(s.events) > max {
		n := len(s.events) - max
		s.events = append(s.events[:0], s.events[n:]...)
		s.eventsDropped += n
	}
}

// EventsDropped counts events evicted from the bounded log.
func (s *Sim) EventsDropped() int { return s.eventsDropped }

// SamplesDropped counts samples evicted from the bounded timeline.
func (s *Sim) SamplesDropped() int { return s.samplesDropped }

// Degraded reports whether the accountant is currently in fair-share
// degraded mode because an application's heartbeats went missing.
func (s *Sim) Degraded() bool { return s.degraded }

// Executor exposes the underlying hardened executor (fault log, watchdog
// counters).
func (s *Sim) Executor() *coordinator.Executor { return s.ex }

// faultsEnabled reports whether the coordinator runs with fault
// injection — the only regime in which heartbeat loss can happen.
func (s *Sim) faultsEnabled() bool {
	f := s.cfg.Coord.Faults
	return f != nil && f.Enabled()
}

// refreshDegraded recomputes the degraded flag from the per-application
// loss states.
func (s *Sim) refreshDegraded() {
	s.degraded = false
	for _, lost := range s.hbLost {
		if lost {
			s.degraded = true
			return
		}
	}
}

// checkHeartbeats advances the per-application telemetry-loss state: a
// delivered-beat total that advanced clears a loss; one stagnant past
// the staleness window declares it. Either transition re-plans.
func (s *Sim) checkHeartbeats(now float64) {
	for i := 0; i < s.ex.Apps() && i < len(s.hbTotal); i++ {
		tot, err := s.ex.HeartbeatTotal(i)
		if err != nil {
			continue
		}
		if tot > s.hbTotal[i] {
			s.hbTotal[i] = tot
			s.hbSeenAt[i] = now
			if s.hbLost[i] {
				s.hbLost[i] = false
				s.logEvent(EvHeartbeatRecovered, s.names[i], "heartbeats returned; utility-aware apportioning restored")
				s.queueRealloc()
			}
			continue
		}
		if !s.hbLost[i] && now-s.hbSeenAt[i] > s.cfg.heartbeatStale() {
			s.hbLost[i] = true
			s.logEvent(EvHeartbeatLoss, s.names[i],
				fmt.Sprintf("no beats for %.1f s; degrading to fair-share apportioning", now-s.hbSeenAt[i]))
			s.queueRealloc()
		}
	}
	s.refreshDegraded()
}

// Run advances the simulation for seconds of simulated time.
func (s *Sim) Run(seconds float64) error {
	dt := s.cfg.StepSeconds
	if dt <= 0 {
		dt = 0.01
	}
	sampleEvery := s.cfg.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = 0.1
	}
	poll := s.cfg.PollSeconds
	if poll <= 0 {
		poll = dt
	}
	end := s.ex.Now() + seconds
	lastSample := math.Inf(-1)

	for s.ex.Now() < end-dt/2 {
		now := s.ex.Now()

		// E1: cap schedule.
		for i := 0; i < len(s.caps); i++ {
			if s.caps[i].at <= now+1e-12 {
				s.ex.SetCap(s.caps[i].capW)
				s.logEvent(EvCapChange, "", fmt.Sprintf("cap -> %.1f W", s.caps[i].capW))
				s.caps = append(s.caps[:i], s.caps[i+1:]...)
				i--
				s.queueRealloc()
			}
		}
		// E2: arrivals. Applications that cannot be placed (direct
		// resources exhausted) wait for a departure.
		for i := 0; i < len(s.arrivals); i++ {
			if s.arrivals[i].at <= now+1e-12 {
				a := s.arrivals[i]
				s.arrivals = append(s.arrivals[:i], s.arrivals[i+1:]...)
				i--
				if err := s.tryAdmit(a); err != nil {
					return err
				}
			}
		}
		// E3: departures.
		for i := 0; i < s.ex.Apps(); i++ {
			if s.ex.Instance(i).Done() {
				name := s.names[i]
				if err := s.ex.RemoveApp(i); err != nil {
					return err
				}
				s.names = append(s.names[:i], s.names[i+1:]...)
				s.objs = append(s.objs[:i], s.objs[i+1:]...)
				s.hbTotal = append(s.hbTotal[:i], s.hbTotal[i+1:]...)
				s.hbSeenAt = append(s.hbSeenAt[:i], s.hbSeenAt[i+1:]...)
				s.hbLost = append(s.hbLost[:i], s.hbLost[i+1:]...)
				s.refreshDegraded()
				s.logEvent(EvDeparture, name, "re-apportioning available power")
				i--
				s.queueRealloc()
				// Departures re-plan immediately: freeing power needs
				// no calibration.
				s.pendingRealloc = 0
				// A freed slot may admit a waiting application.
				if len(s.waiting) > 0 {
					a := s.waiting[0]
					s.waiting = s.waiting[1:]
					if err := s.tryAdmit(a); err != nil {
						return err
					}
				}
			}
		}

		// Serve the re-allocation latency, then install the new plan.
		if s.reallocQueued {
			s.pendingRealloc -= dt
			if s.pendingRealloc <= 0 {
				s.reallocQueued = false
				var prevBudgets []float64
				if s.tel.enabled {
					if sched, ok := s.ex.Schedule(); ok {
						prevBudgets = append(prevBudgets, sched.AppBudgetW...)
					}
				}
				if err := s.replan(); err != nil {
					return err
				}
				if s.tel.enabled {
					s.emitPlanSpan(s.reallocStart)
					s.recordApportionDeltas(prevBudgets)
				}
			}
		}

		// Advance one step.
		var (
			sample coordinator.Sample
			err    error
		)
		if _, ok := s.ex.Schedule(); ok && !s.reallocQueued {
			sample, err = s.ex.Step(dt)
		} else if _, ok := s.ex.Schedule(); ok {
			// Existing applications keep running under the old plan
			// during re-allocation; a schedule that no longer matches
			// the application set cannot, so the server idles.
			if s.scheduleMatches() {
				sample, err = s.ex.Step(dt)
			} else {
				sample, err = s.ex.Idle(dt)
			}
		} else {
			sample, err = s.ex.Idle(dt)
		}
		if err != nil {
			return err
		}

		// Telemetry-loss watch: runs on its own poll clock so a busy
		// re-allocation queue cannot starve it, and only under fault
		// injection so fault-free runs stay untouched.
		if s.faultsEnabled() && now-s.lastHB >= poll-1e-12 {
			s.lastHB = now
			s.tel.hbChecks.Inc()
			s.checkHeartbeats(now)
		}

		// E4: poll draw vs budget.
		if now-s.lastPoll >= poll-1e-12 && !s.reallocQueued {
			s.lastPoll = now
			s.tel.polls.Inc()
			if sched, ok := s.ex.Schedule(); ok && len(sched.AppBudgetW) == s.ex.Apps() {
				for i := 0; i < s.ex.Apps(); i++ {
					budget := sched.AppBudgetW[i]
					if budget <= 0 {
						continue
					}
					if math.Abs(sample.AppW[i]-budget) > s.cfg.driftFrac()*budget {
						s.logEvent(EvPhaseChange, s.names[i],
							fmt.Sprintf("draw %.1f W vs budget %.1f W", sample.AppW[i], budget))
						s.queueRealloc()
						break
					}
				}
			}
		}

		if s.tel.enabled {
			s.setGauges()
		}

		// Record.
		if s.ex.Now()-lastSample >= sampleEvery-1e-12 {
			lastSample = s.ex.Now()
			s.samples = append(s.samples, s.appSample(sample))
			if max := s.cfg.maxSamples(); max > 0 && len(s.samples) > max {
				n := len(s.samples) - max
				s.samples = append(s.samples[:0], s.samples[n:]...)
				s.samplesDropped += n
			}
		}
	}
	return nil
}

// scheduleMatches reports whether the installed schedule's application
// indexing still matches the active set.
func (s *Sim) scheduleMatches() bool {
	sched, ok := s.ex.Schedule()
	if !ok {
		return false
	}
	// A schedule planned before an arrival still indexes correctly
	// (newcomers append at the end and stay suspended); one planned
	// before a departure does not, but departures re-plan immediately.
	return len(sched.AppBudgetW) <= s.ex.Apps()
}

// appSample dresses an executor sample with identity and knob state.
func (s *Sim) appSample(c coordinator.Sample) AppSample {
	out := AppSample{T: c.T, CapW: s.ex.Cap(), GridW: c.GridW, SoC: c.SoC}
	sched, haveSched := s.ex.Schedule()
	for i := 0; i < s.ex.Apps(); i++ {
		st := AppState{Name: s.names[i]}
		if i < len(c.AppW) {
			st.PowerW = c.AppW[i]
		}
		if r, err := s.ex.HeartbeatRate(i); err == nil {
			st.RateHz = r
		}
		if haveSched && i < len(sched.AppBudgetW) {
			st.BudgetW = sched.AppBudgetW[i]
			st.Perf = sched.AppPerf[i]
			for _, seg := range sched.Segments {
				if sk, ok := seg.Run[i]; ok {
					st.Knobs = sk.Knobs
					break
				}
			}
		}
		out.Apps = append(out.Apps, st)
	}
	return out
}
