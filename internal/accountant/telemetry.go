package accountant

import (
	"time"

	"powerstruggle/internal/telemetry"
)

// simTel is the accountant's pre-resolved instrument set, built once in
// NewSim from the hub the coordinator Config carries. A disabled hub
// leaves enabled false and every handle nil; all call sites either
// branch on enabled or hit the handles' nil no-ops, so the
// uninstrumented run does no extra work and stays bit-identical.
type simTel struct {
	enabled bool
	tracer  *telemetry.Tracer

	events          *telemetry.CounterVec
	replans         *telemetry.Counter
	replanSeconds   *telemetry.Histogram
	calibrations    *telemetry.Counter
	calibrateSecs   *telemetry.Histogram
	polls           *telemetry.Counter
	hbChecks        *telemetry.Counter
	apportionDeltaW *telemetry.Histogram
	degraded        *telemetry.Gauge
	apps            *telemetry.Gauge
	waitingApps     *telemetry.Gauge
}

func newSimTel(h *telemetry.Hub) simTel {
	reg := h.Registry()
	if reg == nil {
		return simTel{}
	}
	return simTel{
		enabled: true,
		tracer:  h.Tracer(),
		events: reg.CounterVec("ps_accountant_events_total",
			"Re-allocation triggers logged, by event kind (E1..E4 plus robustness events).", "kind"),
		replans: reg.Counter("ps_accountant_replans_total",
			"Plans computed and installed after a re-allocation window elapsed."),
		replanSeconds: reg.Histogram("ps_accountant_replan_seconds",
			"Wall-clock cost of one replan (policy solve plus schedule install).",
			telemetry.LatencyBuckets()),
		calibrations: reg.Counter("ps_accountant_calibrations_total",
			"Utility-model refreshes: estimator curve queries during replans."),
		calibrateSecs: reg.Histogram("ps_accountant_calibration_seconds",
			"Wall-clock cost of one estimator curve query.",
			telemetry.LatencyBuckets()),
		polls: reg.Counter("ps_accountant_polls_total",
			"E4 status polls comparing per-application draw against budget."),
		hbChecks: reg.Counter("ps_accountant_heartbeat_checks_total",
			"Telemetry-loss sweeps over the active applications."),
		apportionDeltaW: reg.Histogram("ps_accountant_apportion_delta_watts",
			"Absolute per-application budget change between successive plans.",
			telemetry.WattBuckets()),
		degraded: reg.Gauge("ps_accountant_degraded",
			"1 while the accountant runs fair-share degraded mode after heartbeat loss."),
		apps: reg.Gauge("ps_accountant_apps",
			"Applications currently placed on the server."),
		waitingApps: reg.Gauge("ps_accountant_waiting_apps",
			"Admitted applications waiting for free direct resources."),
	}
}

// observeReplan closes out one replan's wall-clock measurement.
func (t *simTel) observeReplan(start time.Time) {
	t.replans.Inc()
	t.replanSeconds.Observe(time.Since(start).Seconds())
}

// observeCalibration records one estimator query.
func (t *simTel) observeCalibration(start time.Time) {
	t.calibrations.Inc()
	t.calibrateSecs.Observe(time.Since(start).Seconds())
}

// emitPlanSpan draws the re-allocation window — trigger to plan install
// — as a plan span on the accountant track.
func (s *Sim) emitPlanSpan(startS float64) {
	if !s.tel.enabled {
		return
	}
	now := s.ex.Now()
	s.tel.tracer.Span("plan", telemetry.CatPlan, telemetry.TidAccountant,
		startS, now-startS,
		telemetry.A("apps", s.ex.Apps()),
		telemetry.A("cap_w", s.ex.Cap()),
		telemetry.A("degraded", s.degraded))
}

// recordApportionDeltas compares the freshly installed plan's budgets
// against the previous plan's, index-aligned over the common prefix
// (departures replan immediately, so stale indexings never persist).
func (s *Sim) recordApportionDeltas(prev []float64) {
	sched, ok := s.ex.Schedule()
	if !ok {
		return
	}
	n := len(sched.AppBudgetW)
	if len(prev) < n {
		n = len(prev)
	}
	for i := 0; i < n; i++ {
		d := sched.AppBudgetW[i] - prev[i]
		if d < 0 {
			d = -d
		}
		s.tel.apportionDeltaW.Observe(d)
	}
}

// setGauges refreshes the accountant's state gauges once per step.
func (s *Sim) setGauges() {
	s.tel.apps.Set(float64(s.ex.Apps()))
	s.tel.waitingApps.Set(float64(len(s.waiting)))
	if s.degraded {
		s.tel.degraded.Set(1)
	} else {
		s.tel.degraded.Set(0)
	}
}
