package accountant

import (
	"math"
	"testing"

	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

func newSim(t *testing.T, pol policy.Kind, capW float64) (*Sim, *workload.Library) {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(Config{
		HW: hw, Policy: pol, Library: lib,
		InitialCapW: 100, ReallocSeconds: 0.8, SampleEvery: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if capW > 0 {
		sim.ex.SetCap(capW)
	}
	return sim, lib
}

func TestNewSimValidation(t *testing.T) {
	hw := simhw.DefaultConfig()
	if _, err := NewSim(Config{HW: hw, InitialCapW: 100}); err == nil {
		t.Error("sim without a library accepted")
	}
	lib, _ := workload.NewLibrary(hw)
	if _, err := NewSim(Config{HW: hw, Library: lib}); err == nil {
		t.Error("sim without a cap accepted")
	}
}

func TestArrivalTriggersE2AndReallocates(t *testing.T) {
	sim, lib := newSim(t, policy.AppResAware, 0)
	if err := sim.AddArrival(0, lib.MustApp("SSSP"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddArrival(5, lib.MustApp("X264"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	events := sim.Events()
	var arrivals int
	for _, e := range events {
		if e.Kind == EvArrival {
			arrivals++
		}
	}
	if arrivals != 2 {
		t.Fatalf("%d arrival events, want 2", arrivals)
	}
	// Before the second arrival SSSP runs alone near its uncapped draw;
	// after re-allocation both run and their draws shrink to fit.
	samples := sim.Samples()
	var before, after *AppSample
	for i := range samples {
		s := &samples[i]
		if s.T > 4 && s.T < 5 && before == nil {
			before = s
		}
		if s.T > 7 && after == nil {
			after = s
		}
	}
	if before == nil || after == nil {
		t.Fatal("missing samples around the arrival")
	}
	if len(before.Apps) != 1 || before.Apps[0].PowerW <= 0 {
		t.Errorf("before arrival: %+v", before.Apps)
	}
	if len(after.Apps) != 2 {
		t.Fatalf("after arrival: %d applications", len(after.Apps))
	}
	if after.Apps[0].PowerW >= before.Apps[0].PowerW {
		t.Errorf("incumbent's power did not shrink: %.1f -> %.1f",
			before.Apps[0].PowerW, after.Apps[0].PowerW)
	}
	if after.Apps[1].PowerW <= 0 {
		t.Error("newcomer got no power after re-allocation")
	}
	if after.GridW > 100+1e-6 {
		t.Errorf("grid draw %.1f over the cap after re-allocation", after.GridW)
	}
}

func TestReallocationLatencyDelaysNewPlan(t *testing.T) {
	sim, lib := newSim(t, policy.AppResAware, 0)
	_ = sim.AddArrival(0, lib.MustApp("kmeans"), 0)
	if err := sim.Run(2); err != nil {
		t.Fatal(err)
	}
	for _, s := range sim.Samples() {
		if s.T < 0.7 && len(s.Apps) == 1 && s.Apps[0].PowerW > 0 {
			t.Fatalf("application ran at t=%.2f, inside the 0.8 s calibration window", s.T)
		}
		if s.T > 1.0 && len(s.Apps) == 1 && s.Apps[0].PowerW <= 0 {
			t.Fatalf("application still idle at t=%.2f", s.T)
		}
	}
}

func TestDepartureTriggersE3AndUncaps(t *testing.T) {
	sim, lib := newSim(t, policy.AppResAware, 0)
	pr := lib.MustApp("PageRank")
	// Finite work: departs after roughly 6 busy seconds.
	_ = sim.AddArrival(0, pr, pr.NoCapRate(simhw.DefaultConfig())*4)
	_ = sim.AddArrival(0, lib.MustApp("kmeans"), 0)
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	var departed bool
	for _, e := range sim.Events() {
		if e.Kind == EvDeparture && e.App == "PageRank" {
			departed = true
		}
	}
	if !departed {
		t.Fatal("no departure event for PageRank")
	}
	// After departure kmeans should hold the whole dynamic budget.
	last := sim.Samples()[len(sim.Samples())-1]
	if len(last.Apps) != 1 || last.Apps[0].Name != "kmeans" {
		t.Fatalf("final state: %+v", last.Apps)
	}
	if last.Apps[0].PowerW < 20 {
		t.Errorf("kmeans draws only %.1f W after the departure freed the budget", last.Apps[0].PowerW)
	}
}

func TestCapChangeTriggersE1(t *testing.T) {
	sim, lib := newSim(t, policy.AppResAware, 0)
	_ = sim.AddArrival(0, lib.MustApp("STREAM"), 0)
	_ = sim.AddArrival(0, lib.MustApp("kmeans"), 0)
	if err := sim.AddCapChange(5, 80); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddCapChange(-1, 0); err == nil {
		t.Error("invalid cap change accepted")
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	var capEvent bool
	for _, e := range sim.Events() {
		if e.Kind == EvCapChange && e.CapW == 80 {
			capEvent = true
		}
	}
	if !capEvent {
		t.Fatal("no E1 event for the cap change")
	}
	// Grid draw must respect the new cap after re-allocation settles.
	for _, s := range sim.Samples() {
		if s.T > 6.5 && s.GridW > 80+1e-6 {
			t.Fatalf("grid %.1f W at t=%.1f under the 80 W cap", s.GridW, s.T)
		}
	}
}

func TestPhaseChangeTriggersE4(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, _ := workload.NewLibrary(hw)
	// An application that abruptly halves its activity after 4 busy
	// seconds: its draw diverges from the allocated budget.
	phased, err := lib.WithPhases("kmeans", []workload.Phase{
		{Seconds: 4, MemScale: 1, ActivityScale: 1},
		{Seconds: 30, MemScale: 1, ActivityScale: 0.35},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(Config{
		HW: hw, Policy: policy.AppResAware, Library: lib,
		InitialCapW: 100, ReallocSeconds: 0.4,
		PollSeconds: 0.2, DriftFrac: 0.2, SampleEvery: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.AddArrival(0, phased, 0)
	_ = sim.AddArrival(0, lib.MustApp("STREAM"), 0)
	if err := sim.Run(12); err != nil {
		t.Fatal(err)
	}
	var e4 bool
	for _, e := range sim.Events() {
		if e.Kind == EvPhaseChange {
			e4 = true
		}
	}
	if !e4 {
		t.Fatal("activity collapse did not trigger E4")
	}
}

func TestEventKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvCapChange, EvArrival, EvDeparture, EvPhaseChange} {
		if k.String() == "" || k.String() == "EventKind(?)" {
			t.Errorf("event kind %d has no name", k)
		}
	}
}

func TestSamplesHaveConsistentShape(t *testing.T) {
	sim, lib := newSim(t, policy.UtilUnaware, 0)
	_ = sim.AddArrival(0, lib.MustApp("ferret"), 0)
	_ = sim.AddArrival(0, lib.MustApp("BFS"), 0)
	if err := sim.Run(5); err != nil {
		t.Fatal(err)
	}
	samples := sim.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	prevT := math.Inf(-1)
	for _, s := range samples {
		if s.T <= prevT {
			t.Fatalf("samples not strictly ordered at t=%g", s.T)
		}
		prevT = s.T
		if s.CapW != 100 {
			t.Errorf("sample cap %g, want 100", s.CapW)
		}
		for _, a := range s.Apps {
			if a.Name == "" {
				t.Error("sample application without a name")
			}
		}
	}
}

func TestRecalibrationConvergesAfterPhaseChange(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, _ := workload.NewLibrary(hw)
	phased, err := lib.WithPhases("kmeans", []workload.Phase{
		{Seconds: 4, MemScale: 1, ActivityScale: 1},
		{Seconds: 60, MemScale: 1, ActivityScale: 0.35},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(Config{
		HW: hw, Policy: policy.AppResAware, Library: lib,
		InitialCapW: 100, ReallocSeconds: 0.4,
		PollSeconds: 0.2, DriftFrac: 0.2, SampleEvery: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.AddArrival(0, phased, 0)
	_ = sim.AddArrival(0, lib.MustApp("STREAM"), 0)
	if err := sim.Run(30); err != nil {
		t.Fatal(err)
	}
	var e4 int
	for _, e := range sim.Events() {
		if e.Kind == EvPhaseChange {
			e4++
		}
	}
	if e4 == 0 {
		t.Fatal("phase change never detected")
	}
	// Re-calibration must converge: the drift triggers a handful of
	// re-allocations, not one per poll (30 s / 0.2 s = 150 polls).
	if e4 > 6 {
		t.Errorf("%d E4 events in 30 s: re-calibration is not converging", e4)
	}
	// After settling, the allocation matches the phase's actual draw.
	last := sim.Samples()[len(sim.Samples())-1]
	for _, a := range last.Apps {
		if a.BudgetW > 0 && a.PowerW > 0 {
			if drift := a.PowerW/a.BudgetW - 1; drift > 0.25 || drift < -0.6 {
				t.Errorf("%s: settled draw %.1f W vs budget %.1f W", a.Name, a.PowerW, a.BudgetW)
			}
		}
	}
}

func TestCriticalArrivalHoldsFloorAndDegradesGracefully(t *testing.T) {
	sim, lib := newSim(t, policy.AppResAware, 0)
	// kmeans is latency-critical with a floor feasible at 100 W but not
	// at 80 W.
	if err := sim.AddArrivalCritical(0, lib.MustApp("kmeans"), 0, 2, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddArrival(0, lib.MustApp("STREAM"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddCapChange(10, 80); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(20); err != nil {
		t.Fatal(err)
	}
	// Before the cap drop the floor holds.
	for _, s := range sim.Samples() {
		if s.T > 5 && s.T < 9.5 && len(s.Apps) == 2 {
			if s.Apps[0].Perf+0.02 < 0.7 {
				t.Fatalf("floor violated at t=%.1f: %.3f", s.T, s.Apps[0].Perf)
			}
		}
	}
	// After the drop the mediator degraded instead of stalling.
	var degraded bool
	for _, e := range sim.Events() {
		if e.Kind == EvSLODegraded {
			degraded = true
		}
	}
	if !degraded {
		t.Fatal("no SLO degradation event after the cap drop")
	}
	last := sim.Samples()[len(sim.Samples())-1]
	if last.GridW > 80+1e-6 {
		t.Errorf("grid %.1f W over the 80 W cap after degradation", last.GridW)
	}
	if len(last.Apps) != 2 {
		t.Fatalf("applications lost after degradation: %d", len(last.Apps))
	}
}

func TestAddArrivalCriticalValidation(t *testing.T) {
	sim, lib := newSim(t, policy.AppResAware, 0)
	if err := sim.AddArrivalCritical(0, lib.MustApp("kmeans"), 0, 0, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := sim.AddArrivalCritical(0, lib.MustApp("kmeans"), 0, 1, 2); err == nil {
		t.Error("floor above 1 accepted")
	}
}
