package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"powerstruggle/internal/ctrlplane"
)

func ctrlDaemon(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := New(Config{Version: "test-build"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnableCtrl(CtrlConfig{ServerID: 0}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func postCtrl(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// The daemon's /ctrl surface: assigns apply the cap and dedup by
// sequence, scrapes report the wire schema with the build version, and
// misdirected messages bounce with 400.
func TestDaemonCtrlEndpoints(t *testing.T) {
	d, srv := ctrlDaemon(t)

	var ack ctrlplane.AssignResponse
	req := ctrlplane.AssignRequest{V: ctrlplane.ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0, CapW: 70}
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, &ack); code != http.StatusOK {
		t.Fatalf("assign: %d", code)
	}
	if !ack.Applied || ack.Fenced {
		t.Fatalf("assign ack %+v", ack)
	}
	if err := d.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	if got := d.health().CapW; got != 70 {
		t.Fatalf("cap %g after assign", got)
	}

	// Duplicate sequence: acknowledged, not applied.
	req.CapW = 30
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, &ack); code != http.StatusOK {
		t.Fatal("duplicate assign rejected at transport")
	}
	if ack.Applied {
		t.Fatal("duplicate assign applied")
	}

	// Misdirected assign and lease.
	req.Seq, req.Server = 2, 5
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, nil); code != http.StatusBadRequest {
		t.Fatalf("misdirected assign: %d", code)
	}
	lease := ctrlplane.LeaseRequest{V: ctrlplane.ProtocolV, Epoch: 1, Server: 5, T: 1}
	if code := postCtrl(t, srv.URL+ctrlplane.PathLease, lease, nil); code != http.StatusBadRequest {
		t.Fatalf("misdirected lease: %d", code)
	}

	// Scrape: wire-valid, versioned, curveless (a live daemon cannot
	// pre-characterize its churning mix).
	resp, err := http.Get(srv.URL + ctrlplane.PathReport + "?t=42")
	if err != nil {
		t.Fatal(err)
	}
	body, err := ctrlplane.ReadBody(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %d %v", resp.StatusCode, err)
	}
	rep, err := ctrlplane.DecodeReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Server != 0 || rep.Version != "test-build" || len(rep.UtilityCurve) != 0 {
		t.Fatalf("report %+v", rep)
	}

	// Health carries the version and the ctrl state.
	h := d.health()
	if h.Version != "test-build" || !h.CtrlEnabled {
		t.Fatalf("health %+v", h)
	}
}

// A failed cap application must not consume the sequence number. A 0 W
// cap is wire-valid (replay agents accept it) but the daemon's
// simulation rejects it, so the coordinator gets a 500 and retries the
// same seq — and the retry must apply rather than be dropped as stale,
// or the wrong cap would persist for the rest of the run.
func TestDaemonCtrlFailedAssignKeepsSeq(t *testing.T) {
	d, srv := ctrlDaemon(t)
	req := ctrlplane.AssignRequest{V: ctrlplane.ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0, CapW: 0, LeaseS: 10}
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, nil); code != http.StatusInternalServerError {
		t.Fatalf("0 W assign: %d, want 500", code)
	}
	h := d.health()
	if h.CtrlStaleDrops != 0 {
		t.Fatalf("failed assign counted as a stale drop: %+v", h)
	}

	// The coordinator's retry carries the same seq with a fixed cap.
	req.CapW = 70
	var ack ctrlplane.AssignResponse
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, &ack); code != http.StatusOK {
		t.Fatalf("retried assign: %d", code)
	}
	if !ack.Applied {
		t.Fatal("retry of a failed assign dropped as stale — the seq was consumed")
	}
	if err := d.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	if got := d.health().CapW; got != 70 {
		t.Fatalf("cap %g after retried assign, want 70", got)
	}
}

// The daemon's ctrl surface applies the same (epoch, seq) fencing as
// the replay agent: a new epoch's grant applies even with a lower seq,
// and anything from an older epoch is acknowledged without effect —
// including renewals, which must not keep a deposed leader's budget
// alive.
func TestDaemonCtrlEpochFencing(t *testing.T) {
	d, srv := ctrlDaemon(t)

	var ack ctrlplane.AssignResponse
	req := ctrlplane.AssignRequest{V: ctrlplane.ProtocolV, Epoch: 2, Seq: 9, Server: 0, T: 0, CapW: 70, LeaseS: 100}
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, &ack); code != http.StatusOK || !ack.Applied {
		t.Fatalf("epoch-2 grant: %d %+v", code, ack)
	}

	// A delayed epoch-1 grant with a huge seq bounces.
	stale := ctrlplane.AssignRequest{V: ctrlplane.ProtocolV, Epoch: 1, Seq: 999, Server: 0, T: 1, CapW: 95, LeaseS: 100}
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, stale, &ack); code != http.StatusOK {
		t.Fatalf("stale-epoch grant: %d", code)
	}
	if ack.Applied {
		t.Fatal("stale-epoch grant applied")
	}
	h := d.health()
	if h.CtrlEpoch != 2 || h.CtrlEpochDrops != 1 {
		t.Fatalf("health epoch=%d drops=%d, want 2 and 1", h.CtrlEpoch, h.CtrlEpochDrops)
	}

	// An old epoch's renewal answers with the live epoch and extends
	// nothing.
	lease := ctrlplane.LeaseRequest{V: ctrlplane.ProtocolV, Epoch: 1, Server: 0, T: 2, LeaseS: 100}
	var lr ctrlplane.LeaseResponse
	if code := postCtrl(t, srv.URL+ctrlplane.PathLease, lease, &lr); code != http.StatusOK {
		t.Fatalf("stale renewal: %d", code)
	}
	if lr.Epoch != 2 {
		t.Fatalf("stale renewal answered epoch %d, want 2", lr.Epoch)
	}
	if d.health().CtrlEpochDrops != 2 {
		t.Fatalf("stale renewal not counted: %+v", d.health())
	}

	// The next leader's first grant carries a lower seq — (epoch, seq)
	// ordering applies it anyway.
	next := ctrlplane.AssignRequest{V: ctrlplane.ProtocolV, Epoch: 3, Seq: 1, Server: 0, T: 3, CapW: 60, LeaseS: 100}
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, next, &ack); code != http.StatusOK || !ack.Applied {
		t.Fatalf("epoch-3 grant: %d %+v", code, ack)
	}
	if err := d.Advance(0.5); err != nil {
		t.Fatal(err)
	}
	if got := d.health().CapW; got != 60 {
		t.Fatalf("cap %g after epoch-3 grant, want 60", got)
	}
}

// A wall-clock lease that lapses without renewal must fence the daemon
// to its fail-safe cap on the next advance.
func TestDaemonCtrlLeaseFence(t *testing.T) {
	d, srv := ctrlDaemon(t)
	req := ctrlplane.AssignRequest{V: ctrlplane.ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0, CapW: 90, LeaseS: 0.05}
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, nil); code != http.StatusOK {
		t.Fatalf("assign: %d", code)
	}
	if err := d.Advance(0.1); err != nil {
		t.Fatal(err)
	}
	if h := d.health(); h.CtrlFenced {
		t.Fatal("fenced before the lease lapsed")
	}

	// A renewal pushes the lapse out.
	lease := ctrlplane.LeaseRequest{V: ctrlplane.ProtocolV, Epoch: 1, Server: 0, T: 1, LeaseS: 0.05}
	var lr ctrlplane.LeaseResponse
	if code := postCtrl(t, srv.URL+ctrlplane.PathLease, lease, &lr); code != http.StatusOK || lr.Fenced {
		t.Fatalf("renew: %d %+v", code, lr)
	}

	time.Sleep(80 * time.Millisecond)
	if err := d.Advance(0.1); err != nil {
		t.Fatal(err)
	}
	h := d.health()
	if !h.CtrlFenced || h.CtrlFences != 1 {
		t.Fatalf("after lapse: %+v", h)
	}
	// The fence is queued like any cap-change event and lands on the
	// next simulation tick.
	if err := d.Advance(0.1); err != nil {
		t.Fatal(err)
	}
	if h := d.health(); h.CapW != d.hw.PIdleWatts {
		t.Fatalf("fence cap %g, want the idle floor %g", h.CapW, d.hw.PIdleWatts)
	}

	// Only a fresh assign unfences.
	req.Seq, req.CapW, req.LeaseS = 2, 80, 10
	var ack ctrlplane.AssignResponse
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, &ack); code != http.StatusOK || !ack.Applied {
		t.Fatalf("re-assign: %d %+v", code, ack)
	}
	if err := d.Advance(0.1); err != nil {
		t.Fatal(err)
	}
	if h := d.health(); h.CtrlFenced || h.CapW != 80 {
		t.Fatalf("after re-assign: %+v", h)
	}
}

// A lapsed lease with safe mode enabled must hold the granted cap,
// decay it toward the configured floor on the wall clock, surface the
// degradation on /healthz, and clear on a fresh assign — never cliff
// to the fence cap.
func TestDaemonCtrlSafeModeDecay(t *testing.T) {
	d, err := New(Config{Version: "test-build"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnableCtrl(CtrlConfig{
		ServerID: 0,
		SafeMode: ctrlplane.SafeModeConfig{HoldS: 0.05, DecayWPerS: 200, FloorW: 66},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	req := ctrlplane.AssignRequest{V: ctrlplane.ProtocolV, Epoch: 1, Seq: 1, Server: 0, T: 0, CapW: 90, LeaseS: 0.05}
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, nil); code != http.StatusOK {
		t.Fatalf("assign: %d", code)
	}
	h := d.health()
	if !h.CtrlLeased || h.CtrlLeaseExpiresInS <= 0 || h.CtrlLeaseExpiresInS > 0.05 {
		t.Fatalf("lease freshness after grant: leased=%v expiresIn=%g", h.CtrlLeased, h.CtrlLeaseExpiresInS)
	}

	// Lapse: the daemon enters safe mode holding the 90 W grant — the
	// cap must not cliff to the idle-floor fence.
	time.Sleep(60 * time.Millisecond)
	if err := d.Advance(0.1); err != nil {
		t.Fatal(err)
	}
	h = d.health()
	if !h.CtrlSafeMode || !h.CtrlFenced || h.CtrlSafeModeEntries != 1 {
		t.Fatalf("after lapse: %+v", h)
	}
	if h.CapW != 90 {
		t.Fatalf("held cap %g W right after lapse, want 90", h.CapW)
	}
	if !h.CtrlLeaseExpired || h.CtrlLeaseExpiresInS != 0 {
		t.Fatalf("lease reported fresh (expired=%v expiresIn=%g) after lapsing", h.CtrlLeaseExpired, h.CtrlLeaseExpiresInS)
	}

	// Past the hold window the decay walks the cap to the floor (200
	// W/s closes the 24 W gap in ~0.12 s; 400 ms is deep inside the
	// pinned-at-floor regime).
	time.Sleep(400 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := d.Advance(0.1); err != nil {
			t.Fatal(err)
		}
	}
	h = d.health()
	if h.CapW != 66 || h.CtrlSafeModeCapW != 66 {
		t.Fatalf("decayed cap %g W (ledger %g), want the 66 W floor", h.CapW, h.CtrlSafeModeCapW)
	}
	if !h.CtrlSafeMode {
		t.Fatal("safe mode dropped while still leaderless")
	}

	// A fresh assign restores normal operation and re-arms the lease.
	req.Seq, req.CapW, req.LeaseS = 2, 80, 10
	var ack ctrlplane.AssignResponse
	if code := postCtrl(t, srv.URL+ctrlplane.PathAssign, req, &ack); code != http.StatusOK || !ack.Applied {
		t.Fatalf("re-assign: %d %+v", code, ack)
	}
	if ack.SafeMode {
		t.Fatal("assign ack still flags safe mode")
	}
	if err := d.Advance(0.1); err != nil {
		t.Fatal(err)
	}
	h = d.health()
	if h.CtrlSafeMode || h.CtrlFenced || h.CapW != 80 {
		t.Fatalf("after re-assign: %+v", h)
	}
	if !h.CtrlLeased || h.CtrlLeaseExpiresInS <= 0 {
		t.Fatalf("lease freshness after re-assign: %+v", h)
	}
}
