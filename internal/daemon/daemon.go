// Package daemon wraps the mediated server in a long-running service
// with an HTTP control surface: admit applications, change the power cap
// (the messages the paper's Accountant receives for events E1 and E2),
// and observe budgets, knob settings, battery state and the event log.
// The simulated platform advances in wall-clock time, so the daemon
// behaves like the paper's prototype did on its Xeon — watched live
// through curl instead of IPMI.
package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"powerstruggle/internal/accountant"
	"powerstruggle/internal/allocator"
	"powerstruggle/internal/buildinfo"
	"powerstruggle/internal/esd"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

// Config parameterizes the daemon.
type Config struct {
	// HW is the platform (zero value: the paper's Table I machine).
	HW simhw.Config
	// Policy is the mediation scheme (default App+Res-Aware).
	Policy policy.Kind
	// InitialCapW is the cap at boot (default: the platform nameplate).
	InitialCapW float64
	// BatteryJ, when positive, attaches a lead-acid ESD.
	BatteryJ float64
	// Faults, when non-nil with any rate enabled, runs the mediated
	// server under the seed-driven fault injector with the hardened
	// control loop.
	Faults *faults.Config
	// MaxEvents and MaxSamples bound the in-memory logs of a
	// long-running daemon (0: the accountant default, 4096).
	MaxEvents  int
	MaxSamples int
	// Telemetry, when non-nil, instruments the whole control loop: the
	// hub's registry is appended to /metrics (after the legacy
	// powerstruggle_* series) and its trace is served on GET /trace as
	// Chrome trace_event JSON.
	Telemetry *telemetry.Hub
	// Version overrides the build version reported on /healthz and in
	// control-plane scrapes (default: buildinfo.Version()).
	Version string
}

// Daemon is the running service.
type Daemon struct {
	mu  sync.Mutex
	sim *accountant.Sim
	lib *workload.Library
	hw  simhw.Config
	// simTime tracks how much simulated time has been consumed.
	simTime float64
	// lastAdvance is the wall-clock time the simulation last moved — a
	// stalled ticker shows up on /healthz.
	lastAdvance time.Time
	// advErr latches the first simulation error; a daemon whose sim
	// died keeps serving telemetry but reports unhealthy.
	advErr  error
	hub     *telemetry.Hub
	version string
	// ctrl, when non-nil, is the cluster control-plane lease state
	// (EnableCtrl).
	ctrl *ctrlState
}

// New builds a daemon.
func New(cfg Config) (*Daemon, error) {
	if cfg.HW.Sockets == 0 {
		cfg.HW = simhw.DefaultConfig()
	}
	if cfg.Policy == 0 {
		cfg.Policy = policy.AppResAware
	}
	if cfg.InitialCapW <= 0 {
		cfg.InitialCapW = cfg.HW.MaxServerWatts()
	}
	lib, err := workload.NewLibrary(cfg.HW)
	if err != nil {
		return nil, err
	}
	var dev *esd.Device
	if cfg.BatteryJ > 0 {
		dev, err = esd.NewDevice(esd.LeadAcid(cfg.BatteryJ), 0.6)
		if err != nil {
			return nil, err
		}
	}
	acfg := accountant.Config{
		HW: cfg.HW, Policy: cfg.Policy, Library: lib,
		InitialCapW: cfg.InitialCapW, Device: dev,
		ReallocSeconds: 0.8, SampleEvery: 0.25,
		MaxEvents: cfg.MaxEvents, MaxSamples: cfg.MaxSamples,
	}
	acfg.Coord.Faults = cfg.Faults
	acfg.Coord.Telemetry = cfg.Telemetry
	allocator.EnableTelemetry(cfg.Telemetry.Registry())
	sim, err := accountant.NewSim(acfg)
	if err != nil {
		return nil, err
	}
	version := cfg.Version
	if version == "" {
		version = buildinfo.Version()
	}
	return &Daemon{sim: sim, lib: lib, hw: cfg.HW, hub: cfg.Telemetry,
		lastAdvance: time.Now(), version: version}, nil
}

// Advance runs the mediated server forward by dt simulated seconds. The
// command loop calls this from a wall-clock ticker; tests call it
// directly.
func (d *Daemon) Advance(dt float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if dt <= 0 {
		return fmt.Errorf("daemon: advance of %g s", dt)
	}
	if err := d.sim.Run(dt); err != nil {
		if d.advErr == nil {
			d.advErr = err
		}
		return err
	}
	d.simTime += dt
	d.lastAdvance = time.Now()
	if err := d.ctrlFenceCheck(); err != nil {
		return err
	}
	return d.ctrlLearnStep()
}

// AdmitRequest is the POST /admit body.
type AdmitRequest struct {
	// App names one of the library benchmarks.
	App string `json:"app"`
	// Seconds of uncapped busy time the job carries (0: endless).
	Seconds float64 `json:"seconds"`
	// Weight scales the application's objective term (0 means 1).
	Weight float64 `json:"weight,omitempty"`
	// FloorPerf is an SLO floor on normalized performance (0 means
	// best-effort).
	FloorPerf float64 `json:"floorPerf,omitempty"`
}

// CapRequest is the POST /cap body.
type CapRequest struct {
	Watts float64 `json:"watts"`
}

// Status is the GET /status response.
type Status struct {
	SimSeconds float64     `json:"simSeconds"`
	CapW       float64     `json:"capW"`
	GridW      float64     `json:"gridW"`
	SoC        float64     `json:"soc"`
	Apps       []StatusApp `json:"apps"`
	Waiting    int         `json:"waiting"`
}

// StatusApp is one application's live state.
type StatusApp struct {
	Name    string  `json:"name"`
	PowerW  float64 `json:"powerW"`
	BudgetW float64 `json:"budgetW"`
	Knobs   string  `json:"knobs"`
}

// status snapshots the latest sample.
func (d *Daemon) status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Status{SimSeconds: d.simTime}
	samples := d.sim.Samples()
	if len(samples) == 0 {
		return st
	}
	last := samples[len(samples)-1]
	st.CapW = last.CapW
	st.GridW = last.GridW
	st.SoC = last.SoC
	st.Waiting = d.sim.Waiting()
	for _, a := range last.Apps {
		st.Apps = append(st.Apps, StatusApp{
			Name: a.Name, PowerW: a.PowerW, BudgetW: a.BudgetW, Knobs: a.Knobs.String(),
		})
	}
	return st
}

// Health is the GET /healthz response: liveness of the simulation loop
// plus the robustness counters of the hardened mediation path.
type Health struct {
	OK         bool    `json:"ok"`
	SimSeconds float64 `json:"simSeconds"`
	// WallSinceAdvanceS is wall-clock seconds since the simulation last
	// moved; a stalled or dead ticker grows it without bound.
	WallSinceAdvanceS float64 `json:"wallSinceAdvanceS"`
	CapW              float64 `json:"capW"`
	Apps              int     `json:"apps"`
	Waiting           int     `json:"waiting"`
	// Degraded reports the accountant's fair-share fallback (heartbeat
	// telemetry lost).
	Degraded bool `json:"degraded"`
	// Watchdog state of the cap-breach clamp.
	WatchdogEngaged bool `json:"watchdogEngaged"`
	WatchdogEngages int  `json:"watchdogEngages"`
	CapBreachSteps  int  `json:"capBreachSteps"`
	MaxBreachRun    int  `json:"maxBreachRun"`
	// FaultEvents counts logged fault/recovery events; DroppedEvents
	// counts entries evicted from the bounded logs.
	FaultEvents   int    `json:"faultEvents"`
	DroppedEvents int    `json:"droppedEvents"`
	Err           string `json:"err,omitempty"`
	// Version is the binary's build version (module version + VCS
	// revision).
	Version string `json:"version"`
	// Control-plane lease state, present when the daemon is joined to
	// a coordinator (EnableCtrl): CtrlFenced reports a lapsed draw
	// lease currently clamping the cap; CtrlFences counts lapses;
	// CtrlStaleDrops counts deduplicated stale/duplicate assigns.
	CtrlEnabled    bool `json:"ctrlEnabled"`
	CtrlFenced     bool `json:"ctrlFenced"`
	CtrlFences     int  `json:"ctrlFences"`
	CtrlStaleDrops int  `json:"ctrlStaleDrops"`
	// CtrlEpoch is the highest coordinator epoch this daemon has
	// applied a grant from (0 before the first grant); CtrlEpochDrops
	// counts grants and renewals refused for carrying an older epoch —
	// nonzero means a deposed coordinator was still talking to us.
	CtrlEpoch      uint64 `json:"ctrlEpoch"`
	CtrlEpochDrops int    `json:"ctrlEpochDrops"`
	// Lease freshness, so external drills can assert degradation
	// without scraping /ctrl: CtrlLeased reports a live draw lease,
	// CtrlLeaseExpiresInS the wall-clock seconds until it lapses
	// (clamped to 0 once lapsed; 0 when no lease is held), and
	// CtrlLeaseExpired distinguishes a lapsed lease from a fresh or
	// absent one — the old negative-seconds encoding conflated "just
	// granted" rounding with "long expired".
	CtrlLeased          bool    `json:"ctrlLeased"`
	CtrlLeaseExpiresInS float64 `json:"ctrlLeaseExpiresInS"`
	CtrlLeaseExpired    bool    `json:"ctrlLeaseExpired"`
	// Protocol-clock state, present when grants carry interval leases:
	// the highest coordinator interval observed and the skew between
	// the coordinator's cadence and this daemon's clock, in intervals.
	CtrlIv          uint64  `json:"ctrlIv,omitempty"`
	CtrlClockSkewIv float64 `json:"ctrlClockSkewIv,omitempty"`
	// Safe-mode degradation state: CtrlSafeMode reports the leaderless
	// hold-and-decay in progress, CtrlSafeModeEntries counts lapses
	// that entered it, and CtrlSafeModeCapW is the cap the decay last
	// clamped (the held cap until the hold window passes).
	CtrlSafeMode        bool    `json:"ctrlSafeMode"`
	CtrlSafeModeEntries int     `json:"ctrlSafeModeEntries"`
	CtrlSafeModeCapW    float64 `json:"ctrlSafeModeCapW"`
	// Online utility learning state, present when CtrlConfig.Learn is
	// set: CtrlLearning flags the mode, CtrlCurveConf the learned
	// curve's coverage confidence (exactly 1 once converged), and
	// CtrlCurveCells its observed cell count.
	CtrlLearning   bool    `json:"ctrlLearning,omitempty"`
	CtrlCurveConf  float64 `json:"ctrlCurveConf,omitempty"`
	CtrlCurveCells int     `json:"ctrlCurveCells,omitempty"`
}

// health snapshots liveness and robustness state.
func (d *Daemon) health() Health {
	d.mu.Lock()
	defer d.mu.Unlock()
	ex := d.sim.Executor()
	h := Health{
		OK:                d.advErr == nil,
		SimSeconds:        d.simTime,
		WallSinceAdvanceS: time.Since(d.lastAdvance).Seconds(),
		CapW:              ex.Cap(),
		Apps:              ex.Apps(),
		Waiting:           d.sim.Waiting(),
		Degraded:          d.sim.Degraded(),
		WatchdogEngaged:   ex.WatchdogEngaged(),
		WatchdogEngages:   ex.WatchdogEngages(),
		CapBreachSteps:    ex.CapBreachSteps(),
		MaxBreachRun:      ex.MaxBreachRun(),
		DroppedEvents:     d.sim.EventsDropped(),
	}
	if log := ex.FaultLog(); log != nil {
		h.FaultEvents = log.Total()
		h.DroppedEvents += log.Dropped()
	}
	if d.advErr != nil {
		h.Err = d.advErr.Error()
	}
	h.Version = d.version
	if c := d.ctrl; c != nil {
		c.mu.Lock()
		h.CtrlEnabled = true
		h.CtrlFenced = c.fenced
		h.CtrlFences = c.fences
		h.CtrlStaleDrops = c.staleDrops
		h.CtrlEpoch = c.lastEpoch
		h.CtrlEpochDrops = c.epochDrops
		h.CtrlLeased = c.leased
		switch {
		case c.leased && c.clockModeLocked():
			// Interval lease: remaining wall time at the coordinator's
			// nominal cadence.
			boundary := c.grantIv + c.leaseIv
			var remaining float64
			if boundary > c.lastSeenIv {
				remaining = float64(boundary-c.lastSeenIv)*c.ivS - c.cfg.Clock().Sub(c.lastSeenAt).Seconds()
			}
			if remaining <= 0 {
				remaining = 0
				h.CtrlLeaseExpired = true
			}
			h.CtrlLeaseExpiresInS = remaining
		case c.leased && c.leaseS > 0:
			expiry := c.leaseStart.Add(time.Duration(c.leaseS * float64(time.Second)))
			if rem := c.cfg.Clock().Sub(expiry).Seconds(); rem >= 0 {
				h.CtrlLeaseExpired = true
			} else {
				h.CtrlLeaseExpiresInS = -rem
			}
		}
		h.CtrlIv = c.lastSeenIv
		h.CtrlClockSkewIv = c.skewIv
		h.CtrlSafeMode = c.safeMode
		h.CtrlSafeModeEntries = c.safeEntries
		if c.safeMode {
			h.CtrlSafeModeCapW = c.safeCapW
		}
		if c.est != nil {
			h.CtrlLearning = true
			h.CtrlCurveConf = c.est.Confidence()
			h.CtrlCurveCells = c.est.ObservedCells()
		}
		c.mu.Unlock()
	}
	return h
}

// Recover wraps a handler with panic recovery: a handler that panics
// returns 500 instead of killing the whole control surface.
func Recover(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				http.Error(w, fmt.Sprintf("internal error: %v", v), http.StatusInternalServerError)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// Handler returns the daemon's HTTP API, wrapped in panic recovery.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		h := d.health()
		w.Header().Set("Content-Type", "application/json")
		if !h.OK {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h)
	})
	mux.HandleFunc("/faults", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		d.mu.Lock()
		events := d.sim.Executor().FaultEvents()
		d.mu.Unlock()
		if events == nil {
			events = []faults.Event{}
		}
		writeJSON(w, events)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, d.status())
	})
	mux.HandleFunc("/apps", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, d.lib.Names())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		d.mu.Lock()
		events := d.sim.Events()
		d.mu.Unlock()
		type ev struct {
			T      float64 `json:"t"`
			Kind   string  `json:"kind"`
			App    string  `json:"app,omitempty"`
			CapW   float64 `json:"capW"`
			Detail string  `json:"detail"`
		}
		out := make([]ev, 0, len(events))
		for _, e := range events {
			out = append(out, ev{T: e.T, Kind: e.Kind.String(), App: e.App, CapW: e.CapW, Detail: e.Detail})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/admit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req AdmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := d.Admit(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/cap", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req CapRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := d.SetCap(req.Watts); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		st := d.status()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP powerstruggle_grid_watts Current grid draw.\n")
		fmt.Fprintf(w, "# TYPE powerstruggle_grid_watts gauge\n")
		fmt.Fprintf(w, "powerstruggle_grid_watts %g\n", st.GridW)
		fmt.Fprintf(w, "# HELP powerstruggle_cap_watts Current power cap.\n")
		fmt.Fprintf(w, "# TYPE powerstruggle_cap_watts gauge\n")
		fmt.Fprintf(w, "powerstruggle_cap_watts %g\n", st.CapW)
		fmt.Fprintf(w, "# HELP powerstruggle_battery_soc Battery state of charge.\n")
		fmt.Fprintf(w, "# TYPE powerstruggle_battery_soc gauge\n")
		fmt.Fprintf(w, "powerstruggle_battery_soc %g\n", st.SoC)
		fmt.Fprintf(w, "# HELP powerstruggle_apps Co-located applications.\n")
		fmt.Fprintf(w, "# TYPE powerstruggle_apps gauge\n")
		fmt.Fprintf(w, "powerstruggle_apps %d\n", len(st.Apps))
		for _, a := range st.Apps {
			fmt.Fprintf(w, "powerstruggle_app_watts{app=%q} %g\n", a.Name, a.PowerW)
			fmt.Fprintf(w, "powerstruggle_app_budget_watts{app=%q} %g\n", a.Name, a.BudgetW)
		}
		h := d.health()
		fmt.Fprintf(w, "# HELP powerstruggle_watchdog_engaged Cap-breach clamp currently engaged.\n")
		fmt.Fprintf(w, "# TYPE powerstruggle_watchdog_engaged gauge\n")
		fmt.Fprintf(w, "powerstruggle_watchdog_engaged %d\n", boolToInt(h.WatchdogEngaged))
		fmt.Fprintf(w, "# HELP powerstruggle_cap_breach_steps_total Control intervals over the cap.\n")
		fmt.Fprintf(w, "# TYPE powerstruggle_cap_breach_steps_total counter\n")
		fmt.Fprintf(w, "powerstruggle_cap_breach_steps_total %d\n", h.CapBreachSteps)
		fmt.Fprintf(w, "# HELP powerstruggle_fault_events_total Logged fault and recovery events.\n")
		fmt.Fprintf(w, "# TYPE powerstruggle_fault_events_total counter\n")
		fmt.Fprintf(w, "powerstruggle_fault_events_total %d\n", h.FaultEvents)
		// The instrumented control loop's registry follows the legacy
		// series; scrapers see one page.
		if reg := d.hub.Registry(); reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	d.ctrlRoutes(mux)
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		tr := d.hub.Tracer()
		if tr == nil {
			http.Error(w, "telemetry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteChromeTrace(w)
	})
	return Recover(mux)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Admit schedules an application now (event E2).
func (d *Daemon) Admit(req AdmitRequest) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, err := d.lib.App(req.App)
	if err != nil {
		return err
	}
	if req.Seconds < 0 {
		return fmt.Errorf("daemon: negative job length %g", req.Seconds)
	}
	beats := 0.0
	if req.Seconds > 0 {
		beats = p.NoCapRate(d.hw) * req.Seconds
	}
	weight := req.Weight
	if weight == 0 {
		weight = 1
	}
	return d.sim.AddArrivalCritical(d.simTime, p, beats, weight, req.FloorPerf)
}

// SetCap changes the power cap now (event E1).
func (d *Daemon) SetCap(watts float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sim.AddCapChange(d.simTime, watts)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
