package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"powerstruggle/internal/faults"
	"powerstruggle/internal/policy"
)

func TestHealthzHealthy(t *testing.T) {
	d, srv := newTestDaemon(t)
	if err := d.Admit(AdmitRequest{App: "STREAM"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(1); err != nil {
		t.Fatal(err)
	}
	var h Health
	get(t, srv.URL+"/healthz", &h)
	if !h.OK {
		t.Fatalf("healthy daemon reports %+v", h)
	}
	if h.SimSeconds != 1 || h.Apps != 1 || h.CapW != 100 {
		t.Errorf("health snapshot %+v", h)
	}
	if h.Degraded || h.WatchdogEngaged || h.Err != "" {
		t.Errorf("fault fields set on a healthy run: %+v", h)
	}
}

func TestHealthzReportsLatchedError(t *testing.T) {
	d, srv := newTestDaemon(t)
	d.mu.Lock()
	d.advErr = errors.New("boom")
	d.mu.Unlock()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz returned %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q on the 503 body", ct)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.OK || h.Err != "boom" {
		t.Fatalf("latched error not surfaced: %+v", h)
	}
}

func TestFaultsEndpoint(t *testing.T) {
	d, err := New(Config{
		Policy: policy.AppResAware, InitialCapW: 100,
		Faults: &faults.Config{Seed: 3, KnobWriteFailP: 0.5, StuckDVFSP: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)

	// Empty but present before anything faults.
	var evs []faults.Event
	get(t, srv.URL+"/faults", &evs)
	if evs == nil || len(evs) != 0 {
		t.Fatalf("fresh /faults = %v, want []", evs)
	}

	if err := d.Admit(AdmitRequest{App: "STREAM"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(5); err != nil {
		t.Fatal(err)
	}
	get(t, srv.URL+"/faults", &evs)
	if len(evs) == 0 {
		t.Fatal("no fault events after 5 s at 50% failure rates")
	}
	var h Health
	get(t, srv.URL+"/healthz", &h)
	if h.FaultEvents == 0 {
		t.Fatalf("health counters missed the faults: %+v", h)
	}
}

func TestRecoverTurnsPanicInto500(t *testing.T) {
	h := Recover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/status", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", rec.Code)
	}
}
