package daemon

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"powerstruggle/internal/cluster"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// drillClock is the injectable wall clock the live daemons run on in
// the mixed drill: nanoseconds past an arbitrary base, advanced in
// lockstep with the coordinator's trace time so trace and wall lease
// arithmetic see bit-identical elapsed spans.
type drillClock struct{ nanos atomic.Int64 }

func (c *drillClock) now() time.Time { return time.Unix(0, c.nanos.Load()) }
func (c *drillClock) set(t float64)  { c.nanos.Store(int64(t * 1e9)) }

// drillEvaluator builds the same small fleet the ctrlplane parity
// tests use.
func drillEvaluator(t *testing.T, servers int) *cluster.Evaluator {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	mixes := workload.Mixes()
	assign := make([]workload.Mix, servers)
	for i := range assign {
		assign[i] = mixes[i%len(mixes)]
	}
	ev, err := cluster.NewEvaluator(cluster.Config{HW: hw, Library: lib, Mixes: assign})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// TestMixedFleetClockParity is the mixed trace+wall acceptance drill:
// one coordinator in protocol-clock mode drives a fleet of two
// trace-replay agents and two live daemons behind a single shared
// BinaryServer listener, while an all-trace oracle fleet replays the
// identical schedule. Budgets must match the oracle bit-for-bit every
// interval, and through a five-interval coordinator stall both kinds
// of member must lapse and decay to bit-identical caps — the whole
// point of leases denominated in intervals instead of seconds.
func TestMixedFleetClockParity(t *testing.T) {
	const (
		servers  = 4
		interval = 300.0
		leaseIv  = 2
	)
	safe := ctrlplane.SafeModeConfig{HoldS: interval, DecayWPerS: 0.05, FloorW: 66}

	// Oracle: four trace-replay agents on one binary listener.
	evO := drillEvaluator(t, servers)
	oracle, err := ctrlplane.StartSimFleetOpts(evO, ctrlplane.FleetOptions{
		Version:   "test",
		SafeMode:  safe,
		Transport: ctrlplane.TransportBinary,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	// Mixed fleet: agents 0-1 replay the trace, servers 2-3 are live
	// daemons on the injected wall clock. All four share one binary
	// listener so grants and renewals ride the same batch frames.
	clk := &drillClock{}
	evM := drillEvaluator(t, 2)
	var agents []*ctrlplane.Agent
	endpoints := map[int]ctrlplane.CtrlEndpoint{}
	for i := 0; i < 2; i++ {
		a, err := ctrlplane.NewAgent(ctrlplane.AgentConfig{
			ID: i, Backend: ctrlplane.NewSimBackend(evM, i), SafeMode: safe, Version: "test",
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		endpoints[i] = a
	}
	var daemons []*Daemon
	for i := 2; i < servers; i++ {
		d, err := New(Config{Version: "test"})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.EnableCtrl(CtrlConfig{ServerID: i, SafeMode: safe, Clock: clk.now}); err != nil {
			t.Fatal(err)
		}
		ep, err := d.CtrlEndpoint()
		if err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
		endpoints[i] = ep
	}
	bsrv, err := ctrlplane.StartBinaryServer("127.0.0.1:0", ctrlplane.BinaryServerConfig{Endpoints: endpoints})
	if err != nil {
		t.Fatal(err)
	}
	defer bsrv.Close()
	refs := make([]ctrlplane.AgentRef, servers)
	for i := range refs {
		refs[i] = ctrlplane.AgentRef{ID: i, URL: bsrv.URL()}
	}

	// LeaseS deliberately shorter than the control interval: if
	// seconds-based aging leaked into clock mode, every member would
	// fence between consecutive grants.
	mkCoord := func(agents []ctrlplane.AgentRef) *ctrlplane.Coordinator {
		c, err := ctrlplane.New(ctrlplane.Config{
			Agents:    agents,
			Strategy:  ctrlplane.StrategyEqual,
			LeaseS:    interval / 2,
			LeaseIv:   leaseIv,
			IntervalS: interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	coordM := mkCoord(refs)
	defer coordM.Close()
	coordO := mkCoord(oracle.Refs())
	defer coordO.Close()

	// capW returns this step's cluster budget: two plateaus so both the
	// assign and the coalesced-renewal paths run, then a third after
	// the stall.
	capW := func(s int) float64 {
		switch {
		case s < 4:
			return 600
		case s < 8:
			return 560
		default:
			return 520
		}
	}

	// memberCap reads the enforced cap of mixed-fleet member i.
	memberCap := func(i int) float64 {
		if i < 2 {
			return agents[i].CapW()
		}
		return daemons[i-2].health().CapW
	}

	lapsedSteps := 0
	for s := 0; s < 20; s++ {
		ts := float64(s) * interval
		clk.set(ts)
		paused := s >= 8 && s <= 12
		if !paused {
			resM, err := coordM.Step(context.Background(), ts, capW(s))
			if err != nil {
				t.Fatal(err)
			}
			resO, err := coordO.Step(context.Background(), ts, capW(s))
			if err != nil {
				t.Fatal(err)
			}
			if resM.Iv == 0 || resM.Iv != resO.Iv {
				t.Fatalf("step %d: minted interval %d (oracle %d)", s, resM.Iv, resO.Iv)
			}
			for i := range resM.Budgets {
				if resM.Budgets[i] != resO.Budgets[i] {
					t.Fatalf("step %d: member %d budget %g W, oracle %g W",
						s, i, resM.Budgets[i], resO.Budgets[i])
				}
				if !resM.Granted[i] {
					t.Fatalf("step %d: member %d not granted", s, i)
				}
			}
		}
		for _, a := range agents {
			if err := a.Tick(ts); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range oracle.Agents {
			if err := a.Tick(ts); err != nil {
				t.Fatal(err)
			}
		}
		for _, d := range daemons {
			// Two advances: the fence check at the end of the first
			// schedules any decay clamp, the second runs the simulation
			// past it so the enforced cap reflects this interval's decay
			// step (the live loop's ticker cadence does the same). 0.05
			// is a whole number of 0.01 s sim steps, so the daemon's
			// simTime stays aligned with the executor clock.
			for k := 0; k < 2; k++ {
				if err := d.Advance(0.05); err != nil {
					t.Fatal(err)
				}
			}
		}
		// The drill's core assertion: every mixed-fleet member —
		// trace-replay or wall-clock — enforces bit-for-bit the cap its
		// all-trace twin enforces, granted, lapsed, or decaying.
		for i := 0; i < servers; i++ {
			if got, want := memberCap(i), oracle.Agents[i].CapW(); got != want {
				t.Fatalf("step %d: member %d cap %g W, all-trace oracle %g W", s, i, got, want)
			}
		}
		if paused {
			h := daemons[0].health()
			if h.CtrlSafeMode {
				lapsedSteps++
				if !h.CtrlLeaseExpired || h.CtrlLeaseExpiresInS != 0 {
					t.Fatalf("step %d: lapsed daemon reports expired=%v expiresIn=%g",
						s, h.CtrlLeaseExpired, h.CtrlLeaseExpiresInS)
				}
			}
		}
	}
	// The stall spans five intervals against a two-interval lease: the
	// fleet must actually have degraded, not coasted on a stale lease.
	if lapsedSteps < 3 {
		t.Fatalf("daemons were in safe mode for %d stall steps, want >= 3", lapsedSteps)
	}
	for i, d := range daemons {
		h := d.health()
		if h.CtrlSafeMode || h.CtrlFenced {
			t.Fatalf("daemon %d still degraded after the coordinator resumed: %+v", 2+i, h)
		}
		if h.CtrlClockSkewIv != 0 {
			t.Fatalf("daemon %d skew %g intervals under a lockstep clock", 2+i, h.CtrlClockSkewIv)
		}
		if h.CtrlIv == 0 || h.CtrlIv != oracle.Agents[2+i].LastIv() {
			t.Fatalf("daemon %d tracked interval %d, oracle %d", 2+i, h.CtrlIv, oracle.Agents[2+i].LastIv())
		}
	}
	for i, a := range agents {
		if a.SafeModeEntries() != 1 || oracle.Agents[i].SafeModeEntries() != 1 {
			t.Fatalf("replay agent %d safe-mode entries %d (oracle %d), want exactly 1 from the stall",
				i, a.SafeModeEntries(), oracle.Agents[i].SafeModeEntries())
		}
	}
}
