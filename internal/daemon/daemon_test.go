package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"powerstruggle/internal/policy"
	"powerstruggle/internal/telemetry"
)

func newTestDaemon(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := New(Config{Policy: policy.AppResAware, InitialCapW: 100, BatteryJ: 300e3})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	return d, srv
}

func post(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func get(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDaemonLifecycleOverHTTP(t *testing.T) {
	d, srv := newTestDaemon(t)

	var apps []string
	get(t, srv.URL+"/apps", &apps)
	if len(apps) != 12 {
		t.Fatalf("%d applications listed", len(apps))
	}

	if resp := post(t, srv.URL+"/admit", AdmitRequest{App: "STREAM"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admit: %d", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/admit", AdmitRequest{App: "kmeans", Seconds: 2}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admit: %d", resp.StatusCode)
	}
	// Advance past the calibration window.
	if err := d.Advance(3); err != nil {
		t.Fatal(err)
	}

	var st Status
	get(t, srv.URL+"/status", &st)
	if len(st.Apps) != 2 {
		t.Fatalf("status lists %d applications", len(st.Apps))
	}
	if st.GridW <= 50 || st.GridW > 100 {
		t.Errorf("grid draw %.1f W", st.GridW)
	}
	if st.CapW != 100 {
		t.Errorf("cap %.1f W", st.CapW)
	}

	// Drop the cap (E1) and check adherence after re-allocation.
	if resp := post(t, srv.URL+"/cap", CapRequest{Watts: 80}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cap: %d", resp.StatusCode)
	}
	if err := d.Advance(3); err != nil {
		t.Fatal(err)
	}
	get(t, srv.URL+"/status", &st)
	if st.CapW != 80 {
		t.Errorf("cap after change: %.1f W", st.CapW)
	}
	if st.GridW > 80+1e-6 {
		t.Errorf("grid %.2f W over the new cap", st.GridW)
	}

	// The finite kmeans job departs eventually (it runs slowly under
	// the tight cap, so give it time).
	if err := d.Advance(60); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	get(t, srv.URL+"/events", &events)
	var sawDeparture bool
	for _, e := range events {
		if e["kind"] == "E3-departure" {
			sawDeparture = true
		}
	}
	if !sawDeparture {
		t.Error("no departure event after the finite job's work")
	}
}

func TestDaemonValidation(t *testing.T) {
	d, srv := newTestDaemon(t)
	if resp := post(t, srv.URL+"/admit", AdmitRequest{App: "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown app: %d", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/cap", CapRequest{Watts: -5}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative cap: %d", resp.StatusCode)
	}
	if err := d.Advance(0); err == nil {
		t.Error("zero advance accepted")
	}
	resp, err := http.Get(srv.URL + "/admit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /admit: %d", resp.StatusCode)
	}
}

func TestDaemonMetrics(t *testing.T) {
	d, srv := newTestDaemon(t)
	if err := d.Admit(AdmitRequest{App: "X264"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(2); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"powerstruggle_grid_watts", "powerstruggle_cap_watts",
		"powerstruggle_battery_soc", `powerstruggle_app_watts{app="X264"}`,
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestDaemonConcurrentRequestsWhileAdvancing(t *testing.T) {
	d, srv := newTestDaemon(t)
	if err := d.Admit(AdmitRequest{App: "STREAM"}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := d.Advance(0.05); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var st Status
				get(t, srv.URL+"/status", &st)
			}
		}()
	}
	wg.Wait()
	<-done
}

func TestDaemonCriticalAdmission(t *testing.T) {
	d, srv := newTestDaemon(t)
	if resp := post(t, srv.URL+"/admit", AdmitRequest{App: "ferret", Weight: 2, FloorPerf: 0.8}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("critical admit: %d", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/admit", AdmitRequest{App: "BFS"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("admit: %d", resp.StatusCode)
	}
	if resp := post(t, srv.URL+"/admit", AdmitRequest{App: "BFS", FloorPerf: 2}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad floor accepted: %d", resp.StatusCode)
	}
	if err := d.Advance(3); err != nil {
		t.Fatal(err)
	}
	var st Status
	get(t, srv.URL+"/status", &st)
	if len(st.Apps) != 2 {
		t.Fatalf("%d applications", len(st.Apps))
	}
	// The critical application's budget exceeds the best-effort one's.
	if st.Apps[0].BudgetW <= st.Apps[1].BudgetW {
		t.Errorf("critical ferret budget %.1f W not above BFS %.1f W",
			st.Apps[0].BudgetW, st.Apps[1].BudgetW)
	}
}

func TestDaemonTelemetryEndpoints(t *testing.T) {
	hub := telemetry.New(0)
	d, err := New(Config{Policy: policy.AppResAware, InitialCapW: 100, BatteryJ: 300e3, Telemetry: hub})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	if err := d.Admit(AdmitRequest{App: "STREAM"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Advance(3); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	// Legacy series stay; the instrumented registry follows, one family
	// per layer of the control loop.
	for _, want := range []string{
		"powerstruggle_grid_watts",
		"ps_coordinator_intervals_total",
		"ps_accountant_replans_total",
		"ps_allocator_solves_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics page missing %s", want)
		}
	}

	traceResp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace = %d", traceResp.StatusCode)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(traceResp.Body).Decode(&parsed); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("daemon trace is empty after 3 s of advancement")
	}
}

func TestDaemonTraceDisabled(t *testing.T) {
	_, srv := newTestDaemon(t)
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /trace without telemetry = %d, want 404", resp.StatusCode)
	}
}
