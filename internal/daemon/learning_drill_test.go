package daemon

import (
	"context"
	"math"
	"testing"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/cluster"
	"powerstruggle/internal/ctrlplane"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
)

// learnLaws are the live daemons' true cap→heartbeat-rate laws in the
// learning drills: one saturates early (wants few watts), one is
// near-linear across the whole cap range (profits from every watt), so
// an apportioner that actually learned the curves splits the cluster
// cap visibly differently from an even share.
func learnLaws() []func(float64) float64 {
	return []func(float64) float64{
		func(c float64) float64 { return 40 * (1 - math.Exp(-c/30)) },
		func(c float64) float64 { return 25 * (1 - math.Exp(-c/160)) },
	}
}

// lawRates samples a rate law over the learnable cap grid.
func lawRates(grid []float64, law func(float64) float64) []float64 {
	rates := make([]float64, len(grid))
	for k, c := range grid {
		rates[k] = law(c)
	}
	return rates
}

// learnFleet is the learning drills' mixed fleet: two trace-replay
// agents plus two live daemons characterizing their mix online, all
// behind one shared binary listener.
type learnFleet struct {
	agents  []*ctrlplane.Agent
	daemons []*Daemon
	refs    []ctrlplane.AgentRef
	bsrv    *ctrlplane.BinaryServer
}

func (f *learnFleet) close() {
	if f.bsrv != nil {
		f.bsrv.Close()
	}
}

// memberCap reads the enforced cap of fleet member i.
func (f *learnFleet) memberCap(i int) float64 {
	if i < len(f.agents) {
		return f.agents[i].CapW()
	}
	return f.daemons[i-len(f.agents)].health().CapW
}

// startLearnFleet boots the mixed fleet: agents 0..1 replay the
// evaluator's trace, daemons 2..3 run on the injected wall clock and
// learn one rate law each from the samples the control loop produces.
// Every member gets its own probe seed so replays stay deterministic.
func startLearnFleet(t *testing.T, ev *cluster.Evaluator, clk *drillClock, lcfg cf.OnlineConfig) *learnFleet {
	t.Helper()
	f := &learnFleet{}
	endpoints := map[int]ctrlplane.CtrlEndpoint{}
	for i := 0; i < 2; i++ {
		a, err := ctrlplane.NewAgent(ctrlplane.AgentConfig{
			ID: i, Backend: ctrlplane.NewSimBackend(ev, i), Version: "test",
		})
		if err != nil {
			t.Fatal(err)
		}
		f.agents = append(f.agents, a)
		endpoints[i] = a
	}
	for j, law := range learnLaws() {
		d, err := New(Config{Version: "test"})
		if err != nil {
			t.Fatal(err)
		}
		lc := lcfg
		lc.Seed = lcfg.Seed + int64(j)
		law := law
		err = d.EnableCtrl(CtrlConfig{
			ServerID: 2 + j,
			Clock:    clk.now,
			Learn:    &lc,
			// The learning observable is the law evaluated at the enforced
			// cap — a deterministic heartbeat rate, so repeated samples of
			// one cell stay bitwise equal and a converged estimator's
			// empirical table reproduces the law's grid row exactly.
			LearnRateHz: func() float64 { return law(d.sim.Executor().Cap()) },
		})
		if err != nil {
			t.Fatal(err)
		}
		ep, err := d.CtrlEndpoint()
		if err != nil {
			t.Fatal(err)
		}
		f.daemons = append(f.daemons, d)
		endpoints[2+j] = ep
	}
	bsrv, err := ctrlplane.StartBinaryServer("127.0.0.1:0", ctrlplane.BinaryServerConfig{Endpoints: endpoints})
	if err != nil {
		t.Fatal(err)
	}
	f.bsrv = bsrv
	f.refs = make([]ctrlplane.AgentRef, 4)
	for i := range f.refs {
		f.refs[i] = ctrlplane.AgentRef{ID: i, URL: bsrv.URL()}
	}
	return f
}

// advanceLearnFleet runs one drill step's member-side work: trace
// agents tick to ts, daemons advance twice (the first advance's learn
// step schedules any probe move, the second runs the simulation past it
// so the enforced cap reflects this interval's probe).
func advanceLearnFleet(t *testing.T, f *learnFleet, ts float64) {
	t.Helper()
	for _, a := range f.agents {
		if err := a.Tick(ts); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range f.daemons {
		for k := 0; k < 2; k++ {
			if err := d.Advance(0.05); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestLearningConvergenceWelfare is the online-learning acceptance
// drill: a utility coordinator drives two trace agents plus two live
// daemons that boot curveless and learn their cap→rate curves from the
// control loop's own samples. Within 50 intervals of cold start the
// budget split's welfare under the true curves must come within 5% of
// the oracle apportionment over those same curves, the learned curves
// themselves must be close, the cluster cap must never be oversubscribed
// while the curves are partial, and the whole trajectory must replay
// bit-identically from the same seeds.
func TestLearningConvergenceWelfare(t *testing.T) {
	const (
		interval = 300.0
		capW     = 380.0
		steps    = 50
	)
	hw := simhw.DefaultConfig()
	floor, nameplate := hw.PIdleWatts, hw.MaxServerWatts()
	grid := cf.CapGrid(floor, nameplate, cluster.ServerCapStepW)
	laws := learnLaws()

	ev := drillEvaluator(t, 2)
	// The oracle: the DP over the true curves — the evaluator's for the
	// trace agents, the rate laws' (built through the estimator's own
	// CurveFromRates) for the live daemons.
	trueCurves := make([][]cluster.CapPoint, 4)
	for i := 0; i < 2; i++ {
		c, err := ev.ServerCapCurve(i)
		if err != nil {
			t.Fatal(err)
		}
		trueCurves[i] = c
	}
	for j, law := range laws {
		trueCurves[2+j] = cf.CurveFromRates(grid, lawRates(grid, law))
	}
	_, oraclePerf, _ := cluster.ApportionCurves(capW, floor, trueCurves)
	if oraclePerf <= 0 {
		t.Fatalf("oracle welfare %g", oraclePerf)
	}

	// welfare scores a budget vector against the true curves, in the
	// same units the oracle DP reports.
	welfare := func(budgets []float64) float64 {
		var sum float64
		for i := 0; i < 2; i++ {
			p, _, err := ev.PlanServer(i, policy.AppResESDAware, math.Min(budgets[i], nameplate))
			if err != nil {
				t.Fatal(err)
			}
			sum += p
		}
		for j, law := range laws {
			sum += law(math.Min(budgets[2+j], nameplate)) / law(nameplate)
		}
		return sum
	}

	run := func() (hist [][]float64, curveErr float64) {
		clk := &drillClock{}
		f := startLearnFleet(t, ev, clk, cf.OnlineConfig{Epsilon: 0.5, Seed: 11})
		defer f.close()
		coord, err := ctrlplane.New(ctrlplane.Config{
			Agents:    f.refs,
			Strategy:  ctrlplane.StrategyUtility,
			LeaseS:    interval / 2,
			LeaseIv:   2,
			IntervalS: interval,
			// Admit a learned curve early: the grant bounds the reachable
			// cells, so waiting for the default coverage floor would
			// deadlock a member whose even share never reaches the upper
			// grid — the CF fill is what carries the unreachable cells.
			CurveConfFloor: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		for s := 0; s < steps; s++ {
			ts := float64(s) * interval
			clk.set(ts)
			res, err := coord.Step(context.Background(), ts, capW)
			if err != nil {
				t.Fatal(err)
			}
			var granted float64
			for _, b := range res.Budgets {
				granted += b
			}
			if granted > capW+1e-6 {
				t.Fatalf("step %d: granted budgets sum to %g W over the %g W cluster cap", s, granted, capW)
			}
			hist = append(hist, append([]float64(nil), res.Budgets...))
			advanceLearnFleet(t, f, ts)
			// The learning invariant: probes self-cap at or below the
			// grant, so the enforced fleet never oversubscribes the
			// cluster cap while the curves are partial.
			var enforced float64
			for i := 0; i < 4; i++ {
				enforced += f.memberCap(i)
			}
			if enforced > capW+1e-6 {
				t.Fatalf("step %d: enforced caps sum to %g W over the %g W cluster cap", s, enforced, capW)
			}
		}
		for j, d := range f.daemons {
			h := d.health()
			if !h.CtrlLearning || h.CtrlCurveCells == 0 {
				t.Fatalf("daemon %d reports learning=%v cells=%d after %d intervals",
					2+j, h.CtrlLearning, h.CtrlCurveCells, steps)
			}
			curve, ok := d.ctrl.est.Curve()
			if !ok || len(curve) != len(grid) {
				t.Fatalf("daemon %d learned %d curve cells, want %d", 2+j, len(curve), len(grid))
			}
			for k := range curve {
				if e := math.Abs(curve[k].Perf - trueCurves[2+j][k].Perf); e > curveErr {
					curveErr = e
				}
			}
		}
		return hist, curveErr
	}

	hist, curveErr := run()
	got := welfare(hist[len(hist)-1])
	if got < 0.95*oraclePerf {
		t.Fatalf("welfare after %d intervals %g, oracle %g (%.1f%%), want within 5%%",
			steps, got, oraclePerf, 100*got/oraclePerf)
	}
	if curveErr > 0.25 {
		t.Fatalf("learned-curve error %g after %d intervals, want <= 0.25", curveErr, steps)
	}
	// Cold start must actually have cost something, or the drill proves
	// nothing about learning.
	if first := welfare(hist[0]); first >= 0.99*oraclePerf {
		t.Fatalf("cold-start welfare %g already at the oracle %g; drill has no learning signal", first, oraclePerf)
	}
	// Same seeds, same trajectory: the drill is a replayable scenario.
	again, _ := run()
	for s := range hist {
		for i := range hist[s] {
			if hist[s][i] != again[s][i] {
				t.Fatalf("step %d member %d budget %g W replayed as %g W", s, i, hist[s][i], again[s][i])
			}
		}
	}
}

// oracleBackend is a trace stand-in for a learned-out daemon: its curve
// is constructed through the same CurveFromRates helper the estimator
// reports through, so a fully converged learner must match its budgets
// bit for bit.
type oracleBackend struct {
	curve              []cluster.CapPoint
	floorW, nameplateW float64
}

func (b *oracleBackend) Apply(capW float64) (float64, float64, error) { return 1, capW, nil }
func (b *oracleBackend) SoC() float64                                 { return 0 }
func (b *oracleBackend) IdleFloorW() float64                          { return b.floorW }
func (b *oracleBackend) NameplateW() float64                          { return b.nameplateW }
func (b *oracleBackend) UtilityCurve() ([]cluster.CapPoint, error)    { return b.curve, nil }

// TestMixedFleetLearnedCurveParity is the learning parity regression:
// once the live daemons' estimators reach full coverage, the utility
// coordinator's budgets over their learned curves must be bit-identical
// to an all-trace fleet whose stand-ins report the oracle curves — the
// learned empirical table, the wire round-trip, and the DP introduce
// not one ulp of drift.
func TestMixedFleetLearnedCurveParity(t *testing.T) {
	const (
		interval   = 300.0
		capW       = 600.0
		learnSteps = 50
		totalSteps = 60
	)
	hw := simhw.DefaultConfig()
	floor, nameplate := hw.PIdleWatts, hw.MaxServerWatts()
	grid := cf.CapGrid(floor, nameplate, cluster.ServerCapStepW)
	laws := learnLaws()

	// Mixed fleet: epsilon 1 probes the least-sampled cell every
	// interval, sweeping the whole grid in len(grid) intervals — the
	// fastest deterministic route to full coverage.
	clk := &drillClock{}
	evL := drillEvaluator(t, 2)
	fleet := startLearnFleet(t, evL, clk, cf.OnlineConfig{Epsilon: 1, Seed: 41})
	defer fleet.close()

	// All-trace twin: same trace agents, the daemons replaced by
	// pre-characterized stand-ins reporting the rate laws' oracle curves.
	evT := drillEvaluator(t, 2)
	var oracleAgents []*ctrlplane.Agent
	endpoints := map[int]ctrlplane.CtrlEndpoint{}
	for i := 0; i < 2; i++ {
		a, err := ctrlplane.NewAgent(ctrlplane.AgentConfig{
			ID: i, Backend: ctrlplane.NewSimBackend(evT, i), Version: "test",
		})
		if err != nil {
			t.Fatal(err)
		}
		oracleAgents = append(oracleAgents, a)
		endpoints[i] = a
	}
	for j, law := range laws {
		a, err := ctrlplane.NewAgent(ctrlplane.AgentConfig{
			ID: 2 + j,
			Backend: &oracleBackend{
				curve:      cf.CurveFromRates(grid, lawRates(grid, law)),
				floorW:     floor,
				nameplateW: nameplate,
			},
			Version: "test",
		})
		if err != nil {
			t.Fatal(err)
		}
		oracleAgents = append(oracleAgents, a)
		endpoints[2+j] = a
	}
	bsrvT, err := ctrlplane.StartBinaryServer("127.0.0.1:0", ctrlplane.BinaryServerConfig{Endpoints: endpoints})
	if err != nil {
		t.Fatal(err)
	}
	defer bsrvT.Close()
	refsT := make([]ctrlplane.AgentRef, 4)
	for i := range refsT {
		refsT[i] = ctrlplane.AgentRef{ID: i, URL: bsrvT.URL()}
	}

	mkCoord := func(refs []ctrlplane.AgentRef) *ctrlplane.Coordinator {
		c, err := ctrlplane.New(ctrlplane.Config{
			Agents:    refs,
			Strategy:  ctrlplane.StrategyUtility,
			LeaseS:    interval / 2,
			LeaseIv:   2,
			IntervalS: interval,
			// Admit learned curves only at full coverage: a partially
			// learned curve whose filled tail goes flat would win a
			// sub-nameplate grant, and since probes never exceed the
			// grant, the cells above it would stay unreachable forever.
			// On the even-share fallback the whole grid is reachable, so
			// the sweep completes — and the floor's boundary semantics
			// (admit at exactly 1.0) get exercised on the way.
			CurveConfFloor: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	coordL := mkCoord(fleet.refs)
	defer coordL.Close()
	coordT := mkCoord(refsT)
	defer coordT.Close()

	converged, compared := -1, 0
	for s := 0; s < totalSteps; s++ {
		ts := float64(s) * interval
		clk.set(ts)
		resL, err := coordL.Step(context.Background(), ts, capW)
		if err != nil {
			t.Fatal(err)
		}
		resT, err := coordT.Step(context.Background(), ts, capW)
		if err != nil {
			t.Fatal(err)
		}
		advanceLearnFleet(t, fleet, ts)
		for _, a := range oracleAgents {
			if err := a.Tick(ts); err != nil {
				t.Fatal(err)
			}
		}
		if converged < 0 {
			full := true
			for _, d := range fleet.daemons {
				if d.health().CtrlCurveConf != 1 {
					full = false
				}
			}
			if full {
				converged = s
			}
			continue
		}
		// One interval after convergence the coordinator has scraped the
		// final empirical table; from then on the fleets must agree bit
		// for bit.
		if s < converged+2 {
			continue
		}
		if resL.Iv == 0 || resL.Iv != resT.Iv {
			t.Fatalf("step %d: minted interval %d (all-trace %d)", s, resL.Iv, resT.Iv)
		}
		for i := range resL.Budgets {
			if resL.Budgets[i] != resT.Budgets[i] {
				t.Fatalf("step %d: member %d learned-curve budget %g W, all-trace %g W",
					s, i, resL.Budgets[i], resT.Budgets[i])
			}
		}
		compared++
	}
	if converged < 0 || converged >= learnSteps {
		var confs []float64
		for _, d := range fleet.daemons {
			confs = append(confs, d.health().CtrlCurveConf)
		}
		t.Fatalf("daemons not fully converged by interval %d (confidence %v)", learnSteps, confs)
	}
	if compared < 5 {
		t.Fatalf("only %d post-convergence intervals compared", compared)
	}
	// A converged probe is the full grant: the enforced caps themselves
	// must match the all-trace twin, not just the paper budgets.
	for i := 0; i < 4; i++ {
		if got, want := fleet.memberCap(i), oracleAgents[i].CapW(); got != want {
			t.Fatalf("member %d enforces %g W, all-trace twin %g W", i, got, want)
		}
	}
}
