package daemon

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"powerstruggle/internal/cf"
	"powerstruggle/internal/ctrlplane"
)

// CtrlConfig joins the daemon to a cluster control plane: the daemon
// serves /ctrl/assign, /ctrl/report, and /ctrl/lease, and fences its
// cap when a granted draw lease lapses without renewal.
//
// The daemon runs in wall-clock time, so unlike the replay agent its
// lease TTL is measured against time.Now at each ticker advance, not
// against the coordinator's trace clock. A live daemon's mix churns as
// jobs arrive and finish, so it cannot pre-characterize cap → utility
// the way the replay evaluator can; by default it reports no utility
// curve and the coordinator apportions evenly for curveless members.
// With Learn set it characterizes the running mix online instead,
// reporting the learned curve with confidence meta — the coordinator
// still treats it as curveless until the confidence clears its floor.
type CtrlConfig struct {
	// ServerID is the daemon's fleet index; assigns addressed to any
	// other ID are rejected.
	ServerID int
	// FenceCapW is the cap the daemon clamps itself to when its draw
	// lease lapses (default: the platform idle floor — a powered-on
	// server cannot draw less without host power-off, which the
	// simulated platform does not model).
	FenceCapW float64
	// SafeMode, when enabled (DecayWPerS > 0), replaces the fence cliff
	// with graceful leaderless degradation: hold the cap in force at
	// lease lapse, then decay it toward FloorW (default: the fence
	// cap). Hold and decay run on the daemon's wall clock, like its
	// lease TTL — unless the grants carry a protocol-clock lease, in
	// which case both lapse and decay age by observed coordinator
	// intervals (the nominal interval length stands in for wall time
	// while the coordinator is stalled), bit-identical with the replay
	// agent's aging.
	SafeMode ctrlplane.SafeModeConfig
	// Clock is the daemon's wall-clock source (default time.Now) —
	// injectable so mixed trace+wall drills run deterministically.
	Clock func() time.Time
	// Learn, when non-nil, turns on online utility learning: the daemon
	// self-caps to probe unsampled cap levels (never above its grant),
	// learns cap → heartbeat-rate from the samples the control loop
	// produces anyway, and reports the learned curve with
	// CurveConf/CurveCells meta. FloorW and NameplateW default to the
	// platform idle floor and nameplate.
	Learn *cf.OnlineConfig
	// LearnRateHz overrides the learning observable (default: the summed
	// heartbeat rate of hosted apps in the latest accountant sample). The
	// callback runs with the daemon's simulation lock held — it must not
	// call back into daemon methods.
	LearnRateHz func() float64
}

// safeModeQuantumW batches wall-clock decay into steps the event log
// can carry: re-clamping on every ticker advance for sub-watt deltas
// would flood the cap-change history without changing behavior.
const safeModeQuantumW = 0.5

// ctrlState is the daemon's lease ledger, guarded by its own mutex so
// the /ctrl handlers never contend with the simulation advance for
// longer than a field read.
type ctrlState struct {
	mu         sync.Mutex
	cfg        CtrlConfig
	fenceCapW  float64
	lastEpoch  uint64
	lastSeq    uint64
	leaseS     float64
	leaseStart time.Time
	leased     bool
	fenced     bool
	fences     int
	staleDrops int
	epochDrops int
	// Safe-mode ledger: heldW is the cap in force at lease lapse,
	// lapsedAt the wall-clock lapse instant, safeCapW the last decay
	// target actually clamped.
	safeMode    bool
	safeEntries int
	heldW       float64
	lapsedAt    time.Time
	safeCapW    float64
	// Protocol-clock mirror of ctrlplane.Agent: the grant's interval
	// stamp and interval lease, the highest interval observed with the
	// wall instant it arrived, and the skew between the coordinator's
	// interval cadence and this daemon's clock.
	grantIv    uint64
	leaseIv    uint64
	ivS        float64
	lastSeenIv uint64
	lastSeenAt time.Time
	skewIv     float64
	// Online-learning state (cfg.Learn): est learns the cap→rate curve,
	// grantW remembers the full grant so a probing daemon can restore
	// it, and lastProbeIv rate-limits probe moves to one per coordinator
	// interval — the cap never flaps within an interval.
	est         *cf.OnlineEstimator
	grantW      float64
	lastProbeIv uint64
}

func (c *ctrlState) clockModeLocked() bool { return c.leaseIv > 0 && c.ivS > 0 }

// noteIvLocked records a higher observed coordinator interval and the
// skew of the local clock against the coordinator's cadence.
func (c *ctrlState) noteIvLocked(iv uint64, ivS float64) {
	if iv == 0 || iv <= c.lastSeenIv {
		return
	}
	now := c.cfg.Clock()
	if c.lastSeenIv > 0 && ivS > 0 {
		c.skewIv = now.Sub(c.lastSeenAt).Seconds()/ivS - float64(iv-c.lastSeenIv)
	}
	c.lastSeenIv = iv
	c.lastSeenAt = now
}

// effectiveIvLocked extrapolates the coordinator's interval counter
// from the last observed value at the nominal interval length — a
// stalled coordinator's leases keep aging at the rate it advertised.
func (c *ctrlState) effectiveIvLocked() uint64 {
	if c.ivS <= 0 {
		return c.lastSeenIv
	}
	dt := c.cfg.Clock().Sub(c.lastSeenAt).Seconds()
	if dt <= 0 {
		return c.lastSeenIv
	}
	return c.lastSeenIv + uint64(dt/c.ivS)
}

// EnableCtrl attaches control-plane state to the daemon. Call before
// Handler; the daemon boots unfenced at its configured cap and only
// starts fencing once the first lease-carrying assign arrives.
func (d *Daemon) EnableCtrl(cfg CtrlConfig) error {
	if cfg.ServerID < 0 {
		return fmt.Errorf("daemon: ctrl server id %d", cfg.ServerID)
	}
	fence := cfg.FenceCapW
	if fence <= 0 {
		fence = d.hw.PIdleWatts
	}
	if err := cfg.SafeMode.Validate(); err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	if cfg.SafeMode.Enabled() && cfg.SafeMode.FloorW == 0 {
		cfg.SafeMode.FloorW = fence
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	st := &ctrlState{cfg: cfg, fenceCapW: fence}
	if cfg.Learn != nil {
		lc := *cfg.Learn
		if lc.FloorW == 0 {
			lc.FloorW = d.hw.PIdleWatts
		}
		if lc.NameplateW == 0 {
			lc.NameplateW = d.hw.MaxServerWatts()
		}
		est, err := cf.NewOnlineEstimator(lc)
		if err != nil {
			return fmt.Errorf("daemon: %w", err)
		}
		st.est = est
	}
	d.ctrl = st
	return nil
}

// ctrlFenceCheck fences the cap if the draw lease has lapsed. Called
// from Advance under d.mu, so it applies the clamp through the
// simulation directly.
func (d *Daemon) ctrlFenceCheck() error {
	c := d.ctrl
	if c == nil {
		return nil
	}
	c.mu.Lock()
	if c.safeMode {
		if c.clockModeLocked() {
			// Protocol-clock decay: age by whole coordinator intervals
			// past the lease boundary. The targets move in interval-sized
			// steps already, so every change is worth clamping — no
			// wall-quantum batching, and the step sequence is
			// bit-identical with a replay agent decaying the same lease.
			boundary := c.grantIv + c.leaseIv
			var over uint64
			if eff := c.effectiveIvLocked(); eff > boundary {
				over = eff - boundary
			}
			target := c.cfg.SafeMode.CapAt(float64(over)*c.ivS, 0, c.heldW)
			if c.safeCapW != target {
				c.safeCapW = target
				c.mu.Unlock()
				return d.sim.AddCapChange(d.simTime, target)
			}
			c.mu.Unlock()
			return nil
		}
		// Leaderless degradation in progress: walk the cap down on the
		// wall clock, re-clamping only in quantum-sized steps.
		target := c.cfg.SafeMode.CapAt(c.cfg.Clock().Sub(c.lapsedAt).Seconds(), 0, c.heldW)
		if c.safeCapW-target >= safeModeQuantumW ||
			(target <= c.cfg.SafeMode.FloorW && c.safeCapW != target) {
			c.safeCapW = target
			c.mu.Unlock()
			return d.sim.AddCapChange(d.simTime, target)
		}
		c.mu.Unlock()
		return nil
	}
	var lapse bool
	if c.clockModeLocked() {
		lapse = c.leased && !c.fenced && c.effectiveIvLocked() >= c.grantIv+c.leaseIv
	} else {
		lapse = c.leased && !c.fenced && c.leaseS > 0 &&
			c.cfg.Clock().Sub(c.leaseStart).Seconds() >= c.leaseS
	}
	if !lapse {
		c.mu.Unlock()
		return nil
	}
	c.fenced = true
	c.fences++
	if c.cfg.SafeMode.Enabled() {
		// Enter safe mode holding the cap in force — it is the last cap
		// a leader granted, so the fleet-wide sum of held caps stays
		// bounded by that leader's cluster cap. The decay clock starts
		// at the lapse instant, not at this ticker advance.
		c.safeMode = true
		c.safeEntries++
		c.lapsedAt = c.leaseStart.Add(time.Duration(c.leaseS * float64(time.Second)))
		c.heldW = d.sim.Executor().Cap()
		c.safeCapW = c.heldW
		c.mu.Unlock()
		return nil
	}
	fence := c.fenceCapW
	c.mu.Unlock()
	return d.sim.AddCapChange(d.simTime, fence)
}

// ctrlLearnStep feeds the online estimator one (enforced cap, observed
// heartbeat rate) sample and — at most once per coordinator interval —
// moves the probe to the estimator's next choice. Rate-limiting probe
// moves to interval boundaries keeps the cap from flapping within an
// interval; a converged estimator's probe is the full grant, so a
// learned-out daemon settles back onto its grants. Called from Advance
// under d.mu, after the fence check.
func (d *Daemon) ctrlLearnStep() error {
	c := d.ctrl
	if c == nil || c.est == nil {
		return nil
	}
	c.mu.Lock()
	if c.fenced || c.safeMode || !c.leased {
		c.mu.Unlock()
		return nil
	}
	capW := d.sim.Executor().Cap()
	var rate float64
	if c.cfg.LearnRateHz != nil {
		rate = c.cfg.LearnRateHz()
	} else {
		rate = d.rateHzLocked()
	}
	c.est.Observe(capW, rate)
	target := capW
	if iv := c.effectiveIvLocked(); iv > c.lastProbeIv {
		c.lastProbeIv = iv
		target = c.est.ProbeCap(c.grantW)
	}
	c.mu.Unlock()
	if target == capW {
		return nil
	}
	return d.sim.AddCapChange(d.simTime, target)
}

// rateHzLocked sums the hosted applications' heartbeat rates from the
// latest accountant sample — the learning observable. Called under
// d.mu.
func (d *Daemon) rateHzLocked() float64 {
	samples := d.sim.Samples()
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, a := range samples[len(samples)-1].Apps {
		sum += a.RateHz
	}
	return sum
}

// ctrlAssign applies a budget grant from the coordinator. The sequence
// check, the cap application, and the ledger update are one atomic
// section under d.mu then c.mu (the lock order Advance establishes,
// holding d.mu when it checks the lease): a failed cap application must
// not consume the sequence number — the coordinator's retry of the same
// seq would be dropped as stale while the wrong cap persists — and two
// in-flight assigns must serialize seq-check-plus-application as a
// unit, or the older (possibly higher) cap could land after the newer
// one while lastSeq says otherwise, a sustained breach that lease
// renewals would then keep alive. Mirrors ctrlplane.Agent.Assign.
func (d *Daemon) ctrlAssign(req ctrlplane.AssignRequest) (ctrlplane.AssignResponse, error) {
	c := d.ctrl
	d.mu.Lock()
	c.mu.Lock()
	if req.Epoch < c.lastEpoch {
		c.epochDrops++
		c.mu.Unlock()
		d.mu.Unlock()
		return d.ctrlAck(false), nil
	}
	if req.Epoch == c.lastEpoch && req.Seq <= c.lastSeq {
		c.staleDrops++
		c.mu.Unlock()
		d.mu.Unlock()
		return d.ctrlAck(false), nil
	}
	capW := req.CapW
	if c.est != nil {
		// A learning daemon may self-cap below its grant to probe an
		// unsampled cell; a probe never exceeds the grant, so the
		// cluster cap holds while the curve is partial.
		c.grantW = req.CapW
		capW = c.est.ProbeCap(req.CapW)
		c.lastProbeIv = req.Iv
	}
	if err := d.sim.AddCapChange(d.simTime, capW); err != nil {
		c.mu.Unlock()
		d.mu.Unlock()
		return ctrlplane.AssignResponse{}, err
	}
	c.lastEpoch = req.Epoch
	c.lastSeq = req.Seq
	c.leaseS = req.LeaseS
	c.leaseStart = c.cfg.Clock()
	c.noteIvLocked(req.Iv, req.IvS)
	c.grantIv, c.leaseIv, c.ivS = req.Iv, req.LeaseIv, req.IvS
	c.leased = req.LeaseS > 0 || req.LeaseIv > 0
	c.fenced = false
	c.safeMode = false
	c.mu.Unlock()
	d.mu.Unlock()
	return d.ctrlAck(true), nil
}

// ctrlAck snapshots the assign-response view.
func (d *Daemon) ctrlAck(applied bool) ctrlplane.AssignResponse {
	st := d.status()
	c := d.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	return ctrlplane.AssignResponse{
		V: ctrlplane.ProtocolV, Server: c.cfg.ServerID,
		Epoch: c.lastEpoch, Seq: c.lastSeq, Applied: applied,
		CapW: st.CapW, GridW: st.GridW, SoC: st.SoC,
		Fenced: c.fenced, SafeMode: c.safeMode, Iv: c.lastSeenIv,
	}
}

// ctrlReport builds a telemetry scrape response.
func (d *Daemon) ctrlReport() ctrlplane.Report {
	c := d.ctrl
	st := d.status()
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := ctrlplane.Report{
		V: ctrlplane.ProtocolV, Server: c.cfg.ServerID,
		Epoch: c.lastEpoch, Seq: c.lastSeq,
		CapW: st.CapW, GridW: st.GridW, SoC: st.SoC,
		Fenced:     c.fenced,
		SafeMode:   c.safeMode,
		IdleFloorW: d.hw.PIdleWatts,
		NameplateW: d.hw.MaxServerWatts(),
		Version:    d.version,
		Iv:         c.lastSeenIv,
	}
	// A live mix is not pre-characterizable, so without a learner the
	// report stays curveless and the coordinator apportions evenly.
	// With one, the learned curve ships with its confidence meta.
	if c.est != nil {
		if curve, ok := c.est.Curve(); ok {
			rep.UtilityCurve = curve
			rep.CurveConf = c.est.Confidence()
			rep.CurveCells = c.est.ObservedCells()
		}
	}
	return rep
}

// ctrlRenew extends the draw lease without changing the budget. A
// fenced daemon stays fenced: only a fresh assign restores its cap.
// Only the epoch that granted the in-force budget may renew it — a
// deposed coordinator's renewals are answered but extend nothing.
func (d *Daemon) ctrlRenew(req ctrlplane.LeaseRequest) ctrlplane.LeaseResponse {
	c := d.ctrl
	st := d.status()
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Epoch < c.lastEpoch {
		c.epochDrops++
	} else {
		c.noteIvLocked(req.Iv, req.IvS)
		if req.Epoch == c.lastEpoch && !c.fenced {
			c.leaseS = req.LeaseS
			c.leaseStart = c.cfg.Clock()
			c.leased = req.LeaseS > 0 || req.LeaseIv > 0
			c.grantIv, c.leaseIv, c.ivS = req.Iv, req.LeaseIv, req.IvS
		}
	}
	var expires float64
	if c.leased {
		expires = req.T + c.leaseS
	}
	return ctrlplane.LeaseResponse{
		V: ctrlplane.ProtocolV, Epoch: c.lastEpoch, Server: c.cfg.ServerID,
		CapW: st.CapW, ExpiresT: expires, Fenced: c.fenced, Iv: c.lastSeenIv,
	}
}

// ctrlEndpoint adapts the daemon to ctrlplane.CtrlEndpoint so it can
// sit behind a BinaryServer listener — same checks as the HTTP routes:
// grants addressed to another server are refused, and the scrape
// ignores the coordinator's trace clock (a daemon lives on the wall
// clock).
type ctrlEndpoint struct{ d *Daemon }

func (e ctrlEndpoint) Assign(req ctrlplane.AssignRequest) (ctrlplane.AssignResponse, error) {
	if req.Server != e.d.ctrl.cfg.ServerID {
		return ctrlplane.AssignResponse{}, fmt.Errorf("assign for server %d reached daemon %d", req.Server, e.d.ctrl.cfg.ServerID)
	}
	return e.d.ctrlAssign(req)
}

func (e ctrlEndpoint) Renew(req ctrlplane.LeaseRequest) (ctrlplane.LeaseResponse, error) {
	if req.Server != e.d.ctrl.cfg.ServerID {
		return ctrlplane.LeaseResponse{}, fmt.Errorf("lease for server %d reached daemon %d", req.Server, e.d.ctrl.cfg.ServerID)
	}
	return e.d.ctrlRenew(req), nil
}

func (e ctrlEndpoint) Scrape(t float64, hasT bool) (ctrlplane.Report, error) {
	return e.d.ctrlReport(), nil
}

// CtrlEndpoint returns the daemon's binary-transport surface, or an
// error if EnableCtrl has not run. psd hosts it on a BinaryServer when
// started with -transport binary.
func (d *Daemon) CtrlEndpoint() (ctrlplane.CtrlEndpoint, error) {
	if d.ctrl == nil {
		return nil, fmt.Errorf("daemon: control plane not enabled")
	}
	return ctrlEndpoint{d: d}, nil
}

// ctrlRoutes mounts the control-plane endpoints on the daemon's mux.
func (d *Daemon) ctrlRoutes(mux *http.ServeMux) {
	c := d.ctrl
	if c == nil {
		return
	}
	mux.HandleFunc(ctrlplane.PathAssign, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readCtrlBody(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := ctrlplane.DecodeAssign(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Server != c.cfg.ServerID {
			http.Error(w, fmt.Sprintf("assign for server %d reached daemon %d", req.Server, c.cfg.ServerID), http.StatusBadRequest)
			return
		}
		resp, err := d.ctrlAssign(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc(ctrlplane.PathReport, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		// The coordinator's trace clock means nothing to a wall-clock
		// daemon; accept and ignore a ?t= so one coordinator can drive
		// mixed fleets.
		if ts := r.URL.Query().Get("t"); ts != "" {
			if _, err := strconv.ParseFloat(ts, 64); err != nil {
				http.Error(w, fmt.Sprintf("bad t %q", ts), http.StatusBadRequest)
				return
			}
		}
		writeJSON(w, d.ctrlReport())
	})
	mux.HandleFunc(ctrlplane.PathLease, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := readCtrlBody(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, err := ctrlplane.DecodeLease(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Server != c.cfg.ServerID {
			http.Error(w, fmt.Sprintf("lease for server %d reached daemon %d", req.Server, c.cfg.ServerID), http.StatusBadRequest)
			return
		}
		writeJSON(w, d.ctrlRenew(req))
	})
}

// readCtrlBody bounds a control-plane request body the same way the
// replay agent does.
func readCtrlBody(r *http.Request) ([]byte, error) {
	return ctrlplane.ReadBody(r.Body)
}
