// Package allocator implements the paper's PowerAllocator: apportioning a
// server's dynamic power budget across co-located applications (R1) by
// the relative utility of each watt, where each application's utility
// curve already encodes the best intra-application split across its
// direct resources (R2) — or deliberately does not, for the baselines.
//
// The apportioning itself is solved exactly by dynamic programming over a
// discretized budget: per-application utility curves are arbitrary
// monotone step functions (they need not be concave — P_cm and the core
// ladder make them lumpy), so marginal-utility greedy can be suboptimal;
// at the paper's scale (a few applications, tens of watts) the DP is
// exact and cheap.
package allocator

import (
	"fmt"
	"math"
	"time"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

// DefaultStepW is the budget discretization of the DP, half of the
// paper's finest knob granularity (1 W DRAM steps).
const DefaultStepW = 0.5

// Allocation is one application's share of the server budget.
type Allocation struct {
	// BudgetW is the power apportioned to the application.
	BudgetW float64
	// Point is the operating point its curve affords under BudgetW;
	// Point.PowerW <= BudgetW. Zero-valued (with Runnable false) when
	// the share cannot run the application at all.
	Point workload.Point
	// Runnable reports whether the share admits any operating point.
	Runnable bool
}

// Perf returns the allocation's normalized performance (0 if not
// runnable).
func (a Allocation) Perf() float64 {
	if !a.Runnable {
		return 0
	}
	return a.Point.Perf
}

// Plan is a complete apportioning of a dynamic budget.
type Plan struct {
	// Allocs has one entry per input curve, in order.
	Allocs []Allocation
	// TotalPerf is the paper's objective (1): the sum of normalized
	// performances.
	TotalPerf float64
	// SpentW is the sum of the chosen operating points' power draws.
	SpentW float64
}

// Apportion splits budget watts across the applications described by
// curves, maximizing the sum of normalized performances (the paper's
// objective with all applications weighed evenly). stepW sets the DP
// resolution; pass 0 for DefaultStepW.
func Apportion(curves []*workload.Curve, budget, stepW float64) (plan Plan, err error) {
	if len(curves) == 0 {
		return Plan{}, fmt.Errorf("allocator: no applications to apportion across")
	}
	if h := tel.Load(); h != nil {
		start := time.Now()
		defer func() { h.observeSolve("dp", start, budget, plan) }()
	}
	if stepW <= 0 {
		stepW = DefaultStepW
	}
	if budget < 0 {
		budget = 0
	}
	levels := int(budget/stepW) + 1

	// perfAt[i][l] is application i's best perf with budget l*stepW.
	perfAt := make([][]float64, len(curves))
	for i, c := range curves {
		row := make([]float64, levels)
		for l := 0; l < levels; l++ {
			row[l] = c.PerfAt(float64(l) * stepW)
		}
		perfAt[i] = row
	}

	// DP over applications: best[l] is the max total perf using budget
	// l*stepW over the first i applications; choice[i][l] records how
	// much the i-th application took.
	best := make([]float64, levels)
	choice := make([][]int, len(curves))
	for i := range curves {
		choice[i] = make([]int, levels)
		next := make([]float64, levels)
		for l := 0; l < levels; l++ {
			bestV, bestK := math.Inf(-1), 0
			for k := 0; k <= l; k++ {
				v := best[l-k] + perfAt[i][k]
				if v > bestV {
					bestV, bestK = v, k
				}
			}
			next[l] = bestV
			choice[i][l] = bestK
		}
		best = next
	}

	// Walk the choices back from the full budget.
	plan = Plan{Allocs: make([]Allocation, len(curves))}
	l := levels - 1
	for i := len(curves) - 1; i >= 0; i-- {
		k := choice[i][l]
		share := float64(k) * stepW
		pt, ok := curves[i].At(share)
		plan.Allocs[i] = Allocation{BudgetW: share, Point: pt, Runnable: ok}
		if ok {
			plan.TotalPerf += pt.Perf
			plan.SpentW += pt.PowerW
		}
		l -= k
	}
	return plan, nil
}

// EqualSplit apportions the budget evenly across all applications — the
// Util-Unaware baseline's R1 decision — and reads each application's
// operating point off its curve.
func EqualSplit(curves []*workload.Curve, budget float64) (plan Plan, err error) {
	if len(curves) == 0 {
		return Plan{}, fmt.Errorf("allocator: no applications to apportion across")
	}
	if h := tel.Load(); h != nil {
		start := time.Now()
		defer func() { h.observeSolve("equal", start, budget, plan) }()
	}
	if budget < 0 {
		budget = 0
	}
	share := budget / float64(len(curves))
	plan = Plan{Allocs: make([]Allocation, len(curves))}
	for i, c := range curves {
		pt, ok := c.At(share)
		plan.Allocs[i] = Allocation{BudgetW: share, Point: pt, Runnable: ok}
		if ok {
			plan.TotalPerf += pt.Perf
			plan.SpentW += pt.PowerW
		}
	}
	return plan, nil
}

// ShapedSplit apportions the budget evenly but picks each application's
// operating point by adopting the knob shape a reference curve (the
// library-average one) chooses at the share — the Server+Res-Aware
// baseline: resource-utility aware on average, application-unaware.
func ShapedSplit(cfg ShapeConfig, budget float64) (plan Plan, err error) {
	if len(cfg.Profiles) == 0 {
		return Plan{}, fmt.Errorf("allocator: no applications to apportion across")
	}
	if h := tel.Load(); h != nil {
		start := time.Now()
		defer func() { h.observeSolve("shaped", start, budget, plan) }()
	}
	if budget < 0 {
		budget = 0
	}
	share := budget / float64(len(cfg.Profiles))
	plan = Plan{Allocs: make([]Allocation, len(cfg.Profiles))}
	shapePt, shapeOK := cfg.Shape.At(share)
	for i, p := range cfg.Profiles {
		var (
			pt workload.Point
			ok bool
		)
		if shapeOK {
			pt, ok = workload.ApplyShape(cfg.HW, p, shapePt.Knobs, share)
		}
		if !ok {
			// The averaged shape has no affordable point; fall back to
			// the floor shape and let ApplyShape idle-inject.
			pt, ok = workload.ApplyShape(cfg.HW, p, workload.MinKnobs(cfg.HW), share)
		}
		plan.Allocs[i] = Allocation{BudgetW: share, Point: pt, Runnable: ok}
		if ok {
			plan.TotalPerf += pt.Perf
			plan.SpentW += pt.PowerW
		}
	}
	return plan, nil
}

// ShapeConfig parameterizes ShapedSplit.
type ShapeConfig struct {
	// HW is the platform.
	HW simhw.Config
	// Profiles are the co-located applications, in order.
	Profiles []*workload.Profile
	// Shape is the reference curve whose knob choices are adopted
	// (typically workload.AverageCurve over the whole library).
	Shape *workload.Curve
}
