package allocator

import (
	"errors"
	"math"
	"testing"

	"powerstruggle/internal/workload"
)

func TestWeightedValidation(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	if _, err := ApportionWeighted(nil, nil, 10, 0); err == nil {
		t.Error("empty inputs accepted")
	}
	if _, err := ApportionWeighted(curves, []Objective{{Weight: 1}}, 10, 0); err == nil {
		t.Error("mismatched objective count accepted")
	}
	if _, err := ApportionWeighted(curves, []Objective{{Weight: -1}, {Weight: 1}}, 10, 0); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := ApportionWeighted(curves, []Objective{{Weight: 1, FloorPerf: 2}, {Weight: 1}}, 10, 0); err == nil {
		t.Error("floor above 1 accepted")
	}
}

func TestWeightedReducesToUnweighted(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	even := []Objective{{Weight: 1}, {Weight: 1}}
	for _, budget := range []float64{10, 20, 30} {
		w, err := ApportionWeighted(curves, even, budget, 0)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Apportion(curves, budget, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.TotalPerf-u.TotalPerf) > 1e-9 {
			t.Errorf("budget %g: weighted-with-unit-weights %g vs unweighted %g",
				budget, w.TotalPerf, u.TotalPerf)
		}
	}
}

func TestWeightsShiftTheSplit(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	const budget = 24.0
	even, err := ApportionWeighted(curves, []Objective{{Weight: 1}, {Weight: 1}}, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Heavily favoring application 1 must not reduce its share.
	skew, err := ApportionWeighted(curves, []Objective{{Weight: 5}, {Weight: 1}}, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if skew.Allocs[0].BudgetW < even.Allocs[0].BudgetW {
		t.Errorf("5x weight reduced the share: %g -> %g",
			even.Allocs[0].BudgetW, skew.Allocs[0].BudgetW)
	}
	if skew.Allocs[0].Perf() < even.Allocs[0].Perf() {
		t.Errorf("5x weight reduced performance: %g -> %g",
			even.Allocs[0].Perf(), skew.Allocs[0].Perf())
	}
}

func TestFloorsAreHonored(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	const budget = 20.0
	// Give the latency-critical application (kmeans) a hard floor.
	objs := []Objective{{Weight: 1}, {Weight: 1, FloorPerf: 0.6}}
	plan, err := ApportionWeighted(curves, objs, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Allocs[1].Perf(); got+1e-9 < 0.6 {
		t.Errorf("floor violated: %g < 0.6", got)
	}
	// Without the floor the best-effort split gives kmeans less.
	free, err := Apportion(curves, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalPerf > free.TotalPerf+1e-9 {
		t.Errorf("constrained plan (%g) beats unconstrained (%g)", plan.TotalPerf, free.TotalPerf)
	}
}

func TestInfeasibleFloors(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	// Both demanding near-full performance under a tiny budget.
	objs := []Objective{{Weight: 1, FloorPerf: 0.95}, {Weight: 1, FloorPerf: 0.95}}
	_, err := ApportionWeighted(curves, objs, 15, 0)
	if err == nil {
		t.Fatal("infeasible floors accepted")
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("error %v does not wrap ErrInfeasible", err)
	}
}

func TestWeightedSpendsWithinBudget(t *testing.T) {
	cfg, _, _ := testCurves(t, "STREAM")
	lib, _ := workload.NewLibrary(cfg)
	curves := []*workload.Curve{
		workload.OptimalCurve(cfg, lib.MustApp("X264")),
		workload.OptimalCurve(cfg, lib.MustApp("BFS")),
		workload.OptimalCurve(cfg, lib.MustApp("ferret")),
	}
	objs := []Objective{{Weight: 2, FloorPerf: 0.3}, {Weight: 1}, {Weight: 0.5, FloorPerf: 0.1}}
	for _, budget := range []float64{15, 25, 40} {
		plan, err := ApportionWeighted(curves, objs, budget, 0)
		if err != nil {
			t.Fatal(err)
		}
		if plan.SpentW > budget+1e-9 {
			t.Fatalf("budget %g: spent %g", budget, plan.SpentW)
		}
		for i, o := range objs {
			if o.FloorPerf > 0 && plan.Allocs[i].Perf()+1e-9 < o.FloorPerf {
				t.Fatalf("budget %g: application %d below floor", budget, i)
			}
		}
	}
}

func TestWeightedMatchesBruteForceWithFloors(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	const step = 0.5
	objs := []Objective{{Weight: 2, FloorPerf: 0.3}, {Weight: 1, FloorPerf: 0.4}}
	for _, budget := range []float64{16, 22, 28} {
		plan, err := ApportionWeighted(curves, objs, budget, step)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force on the same grid.
		best := math.Inf(-1)
		for b0 := 0.0; b0 <= budget+1e-9; b0 += step {
			p0 := curves[0].PerfAt(b0)
			p1 := curves[1].PerfAt(budget - b0)
			if p0+1e-12 < objs[0].FloorPerf || p1+1e-12 < objs[1].FloorPerf {
				continue
			}
			if v := objs[0].Weight*p0 + objs[1].Weight*p1; v > best {
				best = v
			}
		}
		got := objs[0].Weight*plan.Allocs[0].Perf() + objs[1].Weight*plan.Allocs[1].Perf()
		if math.Abs(got-best) > 1e-9 {
			t.Errorf("budget %g: DP weighted objective %g, brute force %g", budget, got, best)
		}
	}
}
