package allocator

import (
	"fmt"
	"math"

	"powerstruggle/internal/workload"
)

// Objective describes one application's term in a weighted allocation
// objective — the generalization of the paper's evenly-weighed objective
// (1) that its footnote on latency-critical applications calls for.
type Objective struct {
	// Weight scales the application's normalized performance in the
	// objective; the paper's objective (1) uses 1 for everyone.
	Weight float64
	// FloorPerf is a minimum normalized performance (an SLO): the
	// allocation is infeasible unless every floor is met. 0 means
	// best-effort.
	FloorPerf float64
}

// ApportionWeighted splits budget watts across applications maximizing
// the weighted sum of normalized performances subject to per-application
// performance floors. Floors turn latency-critical co-location into the
// paper's framework: the latency-critical application states the
// normalized throughput its SLO needs, and only the leftover watts are
// up for utility-maximizing grabs.
//
// It returns ErrInfeasible (wrapped) when the floors cannot all be met
// within the budget.
func ApportionWeighted(curves []*workload.Curve, objs []Objective, budget, stepW float64) (Plan, error) {
	if len(curves) == 0 {
		return Plan{}, fmt.Errorf("allocator: no applications to apportion across")
	}
	if len(objs) != len(curves) {
		return Plan{}, fmt.Errorf("allocator: %d objectives for %d applications", len(objs), len(curves))
	}
	for i, o := range objs {
		if o.Weight < 0 {
			return Plan{}, fmt.Errorf("allocator: application %d has negative weight %g", i, o.Weight)
		}
		if o.FloorPerf < 0 || o.FloorPerf > 1 {
			return Plan{}, fmt.Errorf("allocator: application %d has floor %g outside [0, 1]", i, o.FloorPerf)
		}
	}
	if stepW <= 0 {
		stepW = DefaultStepW
	}
	if budget < 0 {
		budget = 0
	}
	levels := int(budget/stepW) + 1

	// minLevels[i] is the cheapest budget level meeting application i's
	// floor; scoreAt[i][l] is its weighted objective at level l (or
	// -Inf below the floor).
	minLevels := make([]int, len(curves))
	scoreAt := make([][]float64, len(curves))
	for i, c := range curves {
		minLevels[i] = -1
		row := make([]float64, levels)
		for l := 0; l < levels; l++ {
			perf := c.PerfAt(float64(l) * stepW)
			if perf+1e-12 < objs[i].FloorPerf {
				row[l] = math.Inf(-1)
				continue
			}
			if minLevels[i] == -1 {
				minLevels[i] = l
			}
			row[l] = objs[i].Weight * perf
		}
		if minLevels[i] == -1 {
			return Plan{}, fmt.Errorf("allocator: %w: application %d cannot reach floor %.2f under %.1f W",
				ErrInfeasible, i, objs[i].FloorPerf, budget)
		}
		scoreAt[i] = row
	}

	best := make([]float64, levels)
	choice := make([][]int, len(curves))
	for i := range curves {
		choice[i] = make([]int, levels)
		next := make([]float64, levels)
		for l := 0; l < levels; l++ {
			bestV, bestK := math.Inf(-1), -1
			for k := minLevels[i]; k <= l; k++ {
				prev := best[l-k]
				if math.IsInf(prev, -1) || math.IsInf(scoreAt[i][k], -1) {
					continue
				}
				if v := prev + scoreAt[i][k]; v > bestV {
					bestV, bestK = v, k
				}
			}
			next[l] = bestV
			choice[i][l] = bestK
		}
		best = next
	}
	if math.IsInf(best[levels-1], -1) {
		return Plan{}, fmt.Errorf("allocator: %w: floors need more than %.1f W", ErrInfeasible, budget)
	}

	plan := Plan{Allocs: make([]Allocation, len(curves))}
	l := levels - 1
	for i := len(curves) - 1; i >= 0; i-- {
		k := choice[i][l]
		share := float64(k) * stepW
		pt, ok := curves[i].At(share)
		plan.Allocs[i] = Allocation{BudgetW: share, Point: pt, Runnable: ok}
		if ok {
			plan.TotalPerf += pt.Perf
			plan.SpentW += pt.PowerW
		}
		l -= k
	}
	return plan, nil
}

// ErrInfeasible marks allocations whose performance floors cannot be met
// within the budget; callers test with errors.Is.
var ErrInfeasible = fmt.Errorf("allocation infeasible")
