package allocator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"powerstruggle/internal/simhw"
	"powerstruggle/internal/workload"
)

func testCurves(t *testing.T, names ...string) (simhw.Config, []*workload.Curve, []*workload.Profile) {
	t.Helper()
	cfg := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var curves []*workload.Curve
	var profs []*workload.Profile
	for _, n := range names {
		p := lib.MustApp(n)
		profs = append(profs, p)
		curves = append(curves, workload.OptimalCurve(cfg, p))
	}
	return cfg, curves, profs
}

func TestApportionValidation(t *testing.T) {
	if _, err := Apportion(nil, 10, 0); err == nil {
		t.Error("empty curve list accepted")
	}
	if _, err := EqualSplit(nil, 10); err == nil {
		t.Error("empty curve list accepted by EqualSplit")
	}
}

func TestApportionSpendsWithinBudget(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	for _, budget := range []float64{0, 5, 10, 20, 30, 50} {
		plan, err := Apportion(curves, budget, 0)
		if err != nil {
			t.Fatal(err)
		}
		var budgets float64
		for _, a := range plan.Allocs {
			budgets += a.BudgetW
			if a.Runnable && a.Point.PowerW > a.BudgetW+1e-9 {
				t.Fatalf("budget %g: point draws %g over share %g", budget, a.Point.PowerW, a.BudgetW)
			}
		}
		if budgets > budget+1e-9 {
			t.Fatalf("budget %g: shares sum to %g", budget, budgets)
		}
		if plan.SpentW > budget+1e-9 {
			t.Fatalf("budget %g: spent %g", budget, plan.SpentW)
		}
	}
}

func TestApportionMatchesBruteForceOnTwoApps(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	const step = 0.5
	for _, budget := range []float64{10, 20, 30} {
		plan, err := Apportion(curves, budget, step)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force the split on the same grid.
		best := -1.0
		for b0 := 0.0; b0 <= budget+1e-9; b0 += step {
			v := curves[0].PerfAt(b0) + curves[1].PerfAt(budget-b0)
			if v > best {
				best = v
			}
		}
		if math.Abs(plan.TotalPerf-best) > 1e-9 {
			t.Errorf("budget %g: DP total %g, brute force %g", budget, plan.TotalPerf, best)
		}
	}
}

func TestApportionBeatsOrMatchesEqualSplit(t *testing.T) {
	cfg, _, _ := testCurves(t, "STREAM")
	lib, _ := workload.NewLibrary(cfg)
	rng := rand.New(rand.NewSource(8))
	apps := lib.Apps()
	for trial := 0; trial < 40; trial++ {
		a := apps[rng.Intn(len(apps))]
		b := apps[rng.Intn(len(apps))]
		curves := []*workload.Curve{workload.OptimalCurve(cfg, a), workload.OptimalCurve(cfg, b)}
		budget := 6 + rng.Float64()*40
		dp, err := Apportion(curves, budget, 0)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := EqualSplit(curves, budget)
		if err != nil {
			t.Fatal(err)
		}
		// The DP is exact on its budget grid; a continuous equal split
		// can land between grid levels, so allow one grid step's worth
		// of slack (step x a generous slope bound).
		const quantSlack = 0.03
		if dp.TotalPerf+quantSlack < eq.TotalPerf {
			t.Fatalf("%s+%s at %g W: DP %g worse than equal split %g",
				a.Name, b.Name, budget, dp.TotalPerf, eq.TotalPerf)
		}
	}
}

func TestEqualSplitShares(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans")
	plan, err := EqualSplit(curves, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range plan.Allocs {
		if a.BudgetW != 15 {
			t.Errorf("alloc %d share = %g, want 15", i, a.BudgetW)
		}
		if !a.Runnable {
			t.Errorf("alloc %d not runnable at 15 W", i)
		}
	}
}

func TestShapedSplit(t *testing.T) {
	cfg, _, profs := testCurves(t, "STREAM", "kmeans")
	lib, _ := workload.NewLibrary(cfg)
	shape := workload.AverageCurve(cfg, lib.Apps())
	plan, err := ShapedSplit(ShapeConfig{HW: cfg, Profiles: profs, Shape: shape}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocs) != 2 {
		t.Fatalf("%d allocations, want 2", len(plan.Allocs))
	}
	for i, a := range plan.Allocs {
		if !a.Runnable {
			t.Errorf("alloc %d not runnable", i)
		}
		if a.Point.PowerW > a.BudgetW+1e-9 {
			t.Errorf("alloc %d draws %g over share %g", i, a.Point.PowerW, a.BudgetW)
		}
	}
	if _, err := ShapedSplit(ShapeConfig{HW: cfg, Shape: shape}, 30); err == nil {
		t.Error("empty profile list accepted")
	}
}

func TestApportionThreeApps(t *testing.T) {
	_, curves, _ := testCurves(t, "STREAM", "kmeans", "X264")
	plan, err := Apportion(curves, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Allocs) != 3 {
		t.Fatalf("%d allocations, want 3", len(plan.Allocs))
	}
	eq, _ := EqualSplit(curves, 30)
	if plan.TotalPerf+1e-9 < eq.TotalPerf {
		t.Errorf("DP (%g) worse than equal split (%g) with 3 applications", plan.TotalPerf, eq.TotalPerf)
	}
}

func TestQuickApportionNeverOverspends(t *testing.T) {
	cfg := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(cfg)
	if err != nil {
		t.Fatal(err)
	}
	apps := lib.Apps()
	curveCache := make(map[string]*workload.Curve)
	curveFor := func(name string) *workload.Curve {
		if c, ok := curveCache[name]; ok {
			return c
		}
		c := workload.OptimalCurve(cfg, lib.MustApp(name))
		curveCache[name] = c
		return c
	}
	prop := func(ai, bi uint8, bud uint16) bool {
		a := apps[int(ai)%len(apps)]
		b := apps[int(bi)%len(apps)]
		budget := float64(bud%600) / 10 // 0..60 W
		plan, err := Apportion([]*workload.Curve{curveFor(a.Name), curveFor(b.Name)}, budget, 0)
		if err != nil {
			return false
		}
		return plan.SpentW <= budget+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
