package allocator

import (
	"sync/atomic"
	"time"

	"powerstruggle/internal/telemetry"
)

// telHandles is the allocator's pre-resolved instrument set. The
// allocator's entry points are pure functions called from several layers
// (policy planning, the ESD grid search, cluster replay), so the handles
// hang off one process-wide atomic pointer instead of threading a
// registry through every signature; a nil pointer costs one atomic load
// per solve.
type telHandles struct {
	solves       *telemetry.CounterVec
	solveSeconds *telemetry.HistogramVec
	apportionedW *telemetry.Gauge
	budgetW      *telemetry.Gauge
}

var tel atomic.Pointer[telHandles]

// EnableTelemetry instruments every allocator solve against reg: solve
// counts and wall-clock solve time by solver (the DP, the equal split,
// the shaped split), plus the last solve's budget and spent watts.
// Passing nil turns instrumentation back off. Metrics never influence
// the solve, so enabling this cannot change any allocation.
func EnableTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		tel.Store(nil)
		return
	}
	tel.Store(&telHandles{
		solves: reg.CounterVec("ps_allocator_solves_total",
			"Apportioning solves, by solver.", "solver"),
		solveSeconds: reg.HistogramVec("ps_allocator_solve_seconds",
			"Wall-clock time of one apportioning solve, by solver.",
			telemetry.LatencyBuckets(), "solver"),
		apportionedW: reg.Gauge("ps_allocator_apportioned_watts",
			"Dynamic watts the last solve's operating points actually draw."),
		budgetW: reg.Gauge("ps_allocator_budget_watts",
			"Dynamic budget handed to the last solve."),
	})
}

// observeSolve records one finished solve.
func (h *telHandles) observeSolve(solver string, start time.Time, budget float64, plan Plan) {
	h.solves.With(solver).Inc()
	h.solveSeconds.With(solver).Observe(time.Since(start).Seconds())
	h.budgetW.Set(budget)
	h.apportionedW.Set(plan.SpentW)
}
