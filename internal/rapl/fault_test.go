package rapl

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSysfsCounterFaults drives the zone parser over every way a real
// powercap tree goes bad: the failure must surface as a typed
// *CounterError naming the file, never as a silent zero-joule reading.
func TestSysfsCounterFaults(t *testing.T) {
	cases := []struct {
		name     string
		energyUJ string // "" omits the file entirely
		wantErr  string // substring of the underlying error; "" means ok
		notExist bool
	}{
		{name: "valid", energyUJ: "123456", wantErr: ""},
		{name: "valid-with-whitespace", energyUJ: "  789\n\n", wantErr: ""},
		{name: "missing-file", energyUJ: "", wantErr: "no such file", notExist: true},
		{name: "empty-file", energyUJ: "\n", wantErr: "empty counter file"},
		{name: "garbage", energyUJ: "not-a-number", wantErr: "invalid syntax"},
		{name: "negative", energyUJ: "-5", wantErr: "invalid syntax"},
		{name: "truncated-pair", energyUJ: "12 34", wantErr: "invalid syntax"},
		{name: "overflow", energyUJ: "99999999999999999999999999", wantErr: "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "name"), []byte("package-0\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			if tc.energyUJ != "" {
				if err := os.WriteFile(filepath.Join(dir, "energy_uj"), []byte(tc.energyUJ), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			z := &sysfsZone{dir: dir, name: "package-0"}
			v, err := z.EnergyMicroJoules()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed counter read as %d with no error", v)
			}
			var ce *CounterError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v is not a *CounterError", err)
			}
			if !strings.HasSuffix(ce.Path, "energy_uj") {
				t.Errorf("CounterError names %q, want the energy_uj path", ce.Path)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if tc.notExist && !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("missing-file error %v does not unwrap to fs.ErrNotExist", err)
			}
		})
	}
}

func TestSysfsMaxEnergyRange(t *testing.T) {
	dir := t.TempDir()
	z := &sysfsZone{dir: dir, name: "package-0"}
	// Kernel without the attribute: 0, no error — wrap handling is off.
	r, err := z.MaxEnergyRangeMicroJoules()
	if err != nil || r != 0 {
		t.Fatalf("absent range file: got (%d, %v), want (0, nil)", r, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "max_energy_range_uj"), []byte("262143328850\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err = z.MaxEnergyRangeMicroJoules()
	if err != nil || r != 262143328850 {
		t.Fatalf("got (%d, %v), want the advertised modulus", r, err)
	}
}

// fakeZone is a scriptable counter for meter tests.
type fakeZone struct {
	uj   uint64
	wrap uint64
}

func (z *fakeZone) Name() string                          { return "fake" }
func (z *fakeZone) EnergyMicroJoules() (uint64, error)    { return z.uj, nil }
func (z *fakeZone) PowerLimitMicroWatts() (uint64, error) { return 0, nil }
func (z *fakeZone) SetPowerLimitMicroWatts(uint64) error  { return nil }
func (z *fakeZone) Children() []Zone                      { return nil }
func (z *fakeZone) MaxEnergyRangeMicroJoules() (uint64, error) {
	return z.wrap, nil
}

func TestMeterUnwrapsCounterWraparound(t *testing.T) {
	const wrap = 1_000_000 // 1 J modulus keeps the arithmetic readable
	z := &fakeZone{uj: wrap - 100_000, wrap: wrap}
	m := NewMeter(z) // must auto-detect the modulus via WrapRanger
	if _, err := m.Sample(0); err != nil {
		t.Fatal(err)
	}
	// The counter wraps: 100 mJ to the modulus plus 200 mJ past it.
	z.uj = 200_000
	w, err := m.Sample(1)
	if err != nil {
		t.Fatalf("wrapped sample: %v", err)
	}
	if want := 0.3; w < want-1e-9 || w > want+1e-9 {
		t.Fatalf("wrapped delta read %g W, want %g", w, want)
	}
	// The stream keeps working after the wrap.
	z.uj = 500_000
	if w, err = m.Sample(2); err != nil || w < 0.3-1e-9 || w > 0.3+1e-9 {
		t.Fatalf("post-wrap sample: (%g, %v)", w, err)
	}
}

func TestMeterResetSurfacesError(t *testing.T) {
	z := &fakeZone{uj: 500_000} // no modulus: a decrease is unexplained
	m := NewMeter(z)
	if _, err := m.Sample(0); err != nil {
		t.Fatal(err)
	}
	z.uj = 100_000
	if _, err := m.Sample(1); !errors.Is(err, ErrCounterReset) {
		t.Fatalf("backwards counter got %v, want ErrCounterReset", err)
	}
	// The meter re-primed at the post-reset value: the next interval is
	// measured from there, not poisoned by the reset.
	z.uj = 300_000
	w, err := m.Sample(2)
	if err != nil {
		t.Fatalf("post-reset sample: %v", err)
	}
	if want := 0.2; w < want-1e-9 || w > want+1e-9 {
		t.Fatalf("post-reset power %g W, want %g", w, want)
	}
}

func TestMeterSetWrapOverride(t *testing.T) {
	z := &fakeZone{uj: 900} // WrapRanger reports 0: no modulus known
	m := NewMeter(z)
	m.SetWrap(1000)
	if _, err := m.Sample(0); err != nil {
		t.Fatal(err)
	}
	z.uj = 50
	w, err := m.Sample(1)
	if err != nil {
		t.Fatalf("wrapped sample with manual modulus: %v", err)
	}
	if want := 150.0 / 1e6; w < want-1e-12 || w > want+1e-12 {
		t.Fatalf("got %g W, want %g", w, want)
	}
}
