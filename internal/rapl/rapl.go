// Package rapl models the Intel RAPL powercap interface the paper's
// prototype used for socket and DRAM power allocation (refs [33], [40]):
// a tree of zones, each with a cumulative energy counter and a settable
// power-limit constraint, mirroring Linux's /sys/class/powercap layout.
//
// Two backends are provided: an emulated tree driven by the simhw server
// model (read-write), and a read-only view of a real /sys/class/powercap
// directory when one is present — the thin slice of the paper's hardware
// access that commodity Linux exposes without MSR privileges.
package rapl

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// CounterError is a typed read failure of a powercap counter file — a
// missing, truncated, or garbage energy_uj is surfaced to the caller
// instead of masquerading as a zero-joule reading.
type CounterError struct {
	// Path locates the offending file (or zone, for non-file backends).
	Path string
	// Err is the underlying read or parse failure.
	Err error
}

// Error describes the failure.
func (e *CounterError) Error() string {
	return fmt.Sprintf("rapl: counter %s: %v", e.Path, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *CounterError) Unwrap() error { return e.Err }

// ErrCounterReset marks an energy counter that went backwards without a
// known wraparound range to explain it — a reset, a hotplug, or a
// corrupted read. The meter re-primes itself; the caller should discard
// the interval.
var ErrCounterReset = errors.New("rapl: energy counter went backwards")

// WrapRanger is implemented by zones that expose their energy counter's
// wraparound modulus (Linux's max_energy_range_uj). Meters use it to
// compute correct deltas across a counter wrap.
type WrapRanger interface {
	// MaxEnergyRangeMicroJoules returns the counter modulus, or 0 when
	// unknown.
	MaxEnergyRangeMicroJoules() (uint64, error)
}

// Zone is one powercap zone: a package, a DRAM domain, or a sub-zone.
type Zone interface {
	// Name returns the zone's name (e.g. "package-0", "dram").
	Name() string
	// EnergyMicroJoules returns the zone's cumulative energy counter.
	EnergyMicroJoules() (uint64, error)
	// PowerLimitMicroWatts returns the long-term constraint's limit, or
	// 0 if the zone has none.
	PowerLimitMicroWatts() (uint64, error)
	// SetPowerLimitMicroWatts updates the long-term constraint.
	// Read-only backends return an error.
	SetPowerLimitMicroWatts(uw uint64) error
	// Children returns sub-zones in stable order.
	Children() []Zone
}

// emuZone is an emulated powercap zone.
type emuZone struct {
	mu       sync.Mutex
	name     string
	energyUJ float64
	limitUW  uint64
	children []*emuZone
	onLimit  func(watts float64) error
}

var _ Zone = (*emuZone)(nil)

func (z *emuZone) Name() string { return z.name }

func (z *emuZone) EnergyMicroJoules() (uint64, error) {
	z.mu.Lock()
	defer z.mu.Unlock()
	return uint64(z.energyUJ), nil
}

func (z *emuZone) PowerLimitMicroWatts() (uint64, error) {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.limitUW, nil
}

func (z *emuZone) SetPowerLimitMicroWatts(uw uint64) error {
	z.mu.Lock()
	cb := z.onLimit
	z.limitUW = uw
	z.mu.Unlock()
	if cb != nil {
		return cb(float64(uw) / 1e6)
	}
	return nil
}

func (z *emuZone) Children() []Zone {
	z.mu.Lock()
	defer z.mu.Unlock()
	out := make([]Zone, len(z.children))
	for i, c := range z.children {
		out[i] = c
	}
	return out
}

// accumulate adds joules to the zone's energy counter.
func (z *emuZone) accumulate(j float64) {
	z.mu.Lock()
	z.energyUJ += j * 1e6
	z.mu.Unlock()
}

// EmuTree is an emulated intel-rapl tree: one package zone per socket,
// each with a dram child, mirroring the paper platform's controllable
// domains.
type EmuTree struct {
	root *emuZone
	pkgs []*emuZone
	dram []*emuZone
}

// NewEmuTree builds an emulated tree with sockets packages. onDRAMLimit,
// when non-nil, is invoked with (socket, watts) whenever a DRAM limit is
// written — the hook enforcement uses to actuate the simulated channel.
func NewEmuTree(sockets int, onDRAMLimit func(socket int, watts float64) error) (*EmuTree, error) {
	if sockets <= 0 {
		return nil, fmt.Errorf("rapl: %d sockets", sockets)
	}
	t := &EmuTree{root: &emuZone{name: "intel-rapl"}}
	for s := 0; s < sockets; s++ {
		s := s
		pkg := &emuZone{name: fmt.Sprintf("package-%d", s)}
		dram := &emuZone{name: "dram"}
		if onDRAMLimit != nil {
			dram.onLimit = func(w float64) error { return onDRAMLimit(s, w) }
		}
		pkg.children = []*emuZone{dram}
		t.root.children = append(t.root.children, pkg)
		t.pkgs = append(t.pkgs, pkg)
		t.dram = append(t.dram, dram)
	}
	return t, nil
}

// Root returns the tree's root zone.
func (t *EmuTree) Root() Zone { return t.root }

// Package returns socket s's package zone.
func (t *EmuTree) Package(s int) (Zone, error) {
	if s < 0 || s >= len(t.pkgs) {
		return nil, fmt.Errorf("rapl: package %d of %d", s, len(t.pkgs))
	}
	return t.pkgs[s], nil
}

// DRAM returns socket s's dram zone.
func (t *EmuTree) DRAM(s int) (Zone, error) {
	if s < 0 || s >= len(t.dram) {
		return nil, fmt.Errorf("rapl: dram %d of %d", s, len(t.dram))
	}
	return t.dram[s], nil
}

// AccumulatePackage adds joules of socket energy (cores + uncore) to
// socket s's counter, as one integration step of the simulator reports.
func (t *EmuTree) AccumulatePackage(s int, joules float64) error {
	if s < 0 || s >= len(t.pkgs) {
		return fmt.Errorf("rapl: package %d of %d", s, len(t.pkgs))
	}
	t.pkgs[s].accumulate(joules)
	return nil
}

// AccumulateDRAM adds joules of DRAM energy to socket s's dram counter.
func (t *EmuTree) AccumulateDRAM(s int, joules float64) error {
	if s < 0 || s >= len(t.dram) {
		return fmt.Errorf("rapl: dram %d of %d", s, len(t.dram))
	}
	t.dram[s].accumulate(joules)
	return nil
}

// Meter reads windowed average power from a zone's energy counter — the
// sampling loop the Accountant's poll uses.
type Meter struct {
	zone   Zone
	lastUJ uint64
	lastT  float64
	primed bool
	// wrapUJ is the counter modulus (0: unknown); deltas across a wrap
	// are computed as wrap - last + current.
	wrapUJ uint64
}

// NewMeter builds a meter over a zone, auto-detecting the counter's
// wraparound modulus when the zone exposes one.
func NewMeter(z Zone) *Meter {
	m := &Meter{zone: z}
	if wr, ok := z.(WrapRanger); ok {
		if r, err := wr.MaxEnergyRangeMicroJoules(); err == nil {
			m.wrapUJ = r
		}
	}
	return m
}

// SetWrap overrides the counter's wraparound modulus (0 disables wrap
// handling).
func (m *Meter) SetWrap(uj uint64) { m.wrapUJ = uj }

// Sample reads the counter at time t (seconds) and returns the average
// power in watts since the previous sample. The first call primes the
// meter and returns 0. A counter that wrapped is unwrapped against the
// zone's modulus; one that went backwards without a modulus to explain
// it returns ErrCounterReset (and the meter re-primes), never a silent
// zero.
func (m *Meter) Sample(t float64) (float64, error) {
	uj, err := m.zone.EnergyMicroJoules()
	if err != nil {
		return 0, err
	}
	if !m.primed {
		m.primed = true
		m.lastUJ, m.lastT = uj, t
		return 0, nil
	}
	dt := t - m.lastT
	if dt <= 0 {
		return 0, fmt.Errorf("rapl: meter time went backwards (%g after %g)", t, m.lastT)
	}
	var dUJ uint64
	switch {
	case uj >= m.lastUJ:
		dUJ = uj - m.lastUJ
	case m.wrapUJ > 0 && m.lastUJ <= m.wrapUJ:
		dUJ = m.wrapUJ - m.lastUJ + uj
	default:
		last := m.lastUJ
		m.lastUJ, m.lastT = uj, t
		return 0, fmt.Errorf("%w (%d after %d)", ErrCounterReset, uj, last)
	}
	m.lastUJ, m.lastT = uj, t
	return float64(dUJ) / 1e6 / dt, nil
}

// Walk visits every zone in the tree depth-first, parents before
// children, in stable name order at each level.
func Walk(z Zone, visit func(path string, z Zone) error) error {
	return walk(z, z.Name(), visit)
}

func walk(z Zone, path string, visit func(string, Zone) error) error {
	if err := visit(path, z); err != nil {
		return err
	}
	kids := z.Children()
	sort.Slice(kids, func(i, j int) bool { return kids[i].Name() < kids[j].Name() })
	for _, c := range kids {
		if err := walk(c, path+"/"+c.Name(), visit); err != nil {
			return err
		}
	}
	return nil
}
