package rapl

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEmuTreeStructure(t *testing.T) {
	if _, err := NewEmuTree(0, nil); err == nil {
		t.Error("zero-socket tree accepted")
	}
	tree, err := NewEmuTree(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.Root()
	if root.Name() != "intel-rapl" {
		t.Errorf("root name %q", root.Name())
	}
	kids := root.Children()
	if len(kids) != 2 {
		t.Fatalf("%d packages, want 2", len(kids))
	}
	for s := 0; s < 2; s++ {
		pkg, err := tree.Package(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkg.Children()) != 1 || pkg.Children()[0].Name() != "dram" {
			t.Errorf("package %d children: %v", s, pkg.Children())
		}
	}
	if _, err := tree.Package(5); err == nil {
		t.Error("out-of-range package accepted")
	}
	if _, err := tree.DRAM(-1); err == nil {
		t.Error("out-of-range dram accepted")
	}
}

func TestEmuEnergyAccumulation(t *testing.T) {
	tree, _ := NewEmuTree(1, nil)
	if err := tree.AccumulatePackage(0, 12.5); err != nil {
		t.Fatal(err)
	}
	if err := tree.AccumulateDRAM(0, 3.25); err != nil {
		t.Fatal(err)
	}
	pkg, _ := tree.Package(0)
	e, err := pkg.EnergyMicroJoules()
	if err != nil {
		t.Fatal(err)
	}
	if e != 12_500_000 {
		t.Errorf("package energy %d uJ, want 12.5 J", e)
	}
	dram, _ := tree.DRAM(0)
	e, _ = dram.EnergyMicroJoules()
	if e != 3_250_000 {
		t.Errorf("dram energy %d uJ, want 3.25 J", e)
	}
	if err := tree.AccumulatePackage(9, 1); err == nil {
		t.Error("accumulate to unknown socket accepted")
	}
}

func TestDRAMLimitCallback(t *testing.T) {
	var gotSocket int
	var gotWatts float64
	tree, err := NewEmuTree(2, func(s int, w float64) error {
		gotSocket, gotWatts = s, w
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dram, _ := tree.DRAM(1)
	if err := dram.SetPowerLimitMicroWatts(7_000_000); err != nil {
		t.Fatal(err)
	}
	if gotSocket != 1 || gotWatts != 7 {
		t.Errorf("callback saw socket %d at %g W, want 1 at 7 W", gotSocket, gotWatts)
	}
	limit, err := dram.PowerLimitMicroWatts()
	if err != nil {
		t.Fatal(err)
	}
	if limit != 7_000_000 {
		t.Errorf("limit readback %d", limit)
	}
}

func TestMeterAveragesPower(t *testing.T) {
	tree, _ := NewEmuTree(1, nil)
	pkg, _ := tree.Package(0)
	m := NewMeter(pkg)
	if w, err := m.Sample(0); err != nil || w != 0 {
		t.Fatalf("priming sample = %g, %v", w, err)
	}
	// 25 W for 2 seconds.
	_ = tree.AccumulatePackage(0, 50)
	w, err := m.Sample(2)
	if err != nil {
		t.Fatal(err)
	}
	if w != 25 {
		t.Errorf("metered %g W, want 25", w)
	}
	if _, err := m.Sample(1); err == nil {
		t.Error("backwards sample accepted")
	}
}

func TestWalkVisitsDepthFirst(t *testing.T) {
	tree, _ := NewEmuTree(2, nil)
	var paths []string
	err := Walk(tree.Root(), func(path string, z Zone) error {
		paths = append(paths, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"intel-rapl",
		"intel-rapl/package-0",
		"intel-rapl/package-0/dram",
		"intel-rapl/package-1",
		"intel-rapl/package-1/dram",
	}
	if len(paths) != len(want) {
		t.Fatalf("walked %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("walk order %v, want %v", paths, want)
		}
	}
}

// writeSysfsZone fabricates one powercap zone directory.
func writeSysfsZone(t *testing.T, root, dir, name string, energyUJ, limitUW string) {
	t.Helper()
	full := filepath.Join(root, dir)
	if err := os.MkdirAll(full, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{"name": name + "\n", "energy_uj": energyUJ + "\n"}
	if limitUW != "" {
		files["constraint_0_power_limit_uw"] = limitUW + "\n"
	}
	for f, content := range files {
		if err := os.WriteFile(filepath.Join(full, f), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenSysfsReadsFabricatedTree(t *testing.T) {
	root := t.TempDir()
	writeSysfsZone(t, root, "intel-rapl:0", "package-0", "123456789", "95000000")
	writeSysfsZone(t, root, "intel-rapl:0/intel-rapl:0:0", "dram", "4242", "")
	writeSysfsZone(t, root, "intel-rapl:1", "package-1", "99", "0")

	zones, err := OpenSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 2 {
		t.Fatalf("%d top-level zones, want 2", len(zones))
	}
	pkg0 := zones[0]
	if pkg0.Name() != "package-0" {
		t.Errorf("first zone %q", pkg0.Name())
	}
	e, err := pkg0.EnergyMicroJoules()
	if err != nil {
		t.Fatal(err)
	}
	if e != 123456789 {
		t.Errorf("energy %d", e)
	}
	limit, err := pkg0.PowerLimitMicroWatts()
	if err != nil {
		t.Fatal(err)
	}
	if limit != 95000000 {
		t.Errorf("limit %d", limit)
	}
	kids := pkg0.Children()
	if len(kids) != 1 || kids[0].Name() != "dram" {
		t.Fatalf("package-0 children: %v", kids)
	}
	// The dram zone has no constraint file: limit reads as 0.
	if l, err := kids[0].PowerLimitMicroWatts(); err != nil || l != 0 {
		t.Errorf("dram limit = %d, %v", l, err)
	}
	// The backend is read-only.
	if err := pkg0.SetPowerLimitMicroWatts(1); err == nil {
		t.Error("sysfs write accepted")
	}
}

func TestOpenSysfsMissingRoot(t *testing.T) {
	zones, err := OpenSysfs(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("missing root errored: %v", err)
	}
	if len(zones) != 0 {
		t.Fatalf("zones from a missing root: %v", zones)
	}
}

func TestSysfsRejectsMalformedFiles(t *testing.T) {
	root := t.TempDir()
	writeSysfsZone(t, root, "intel-rapl:0", "package-0", "not-a-number", "12")
	zones, err := OpenSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 {
		t.Fatalf("%d zones", len(zones))
	}
	if _, err := zones[0].EnergyMicroJoules(); err == nil {
		t.Error("non-numeric energy accepted")
	}
}

func TestSysfsSkipsZonesWithoutNames(t *testing.T) {
	root := t.TempDir()
	// A directory with the right shape but no "name" file is skipped.
	if err := os.MkdirAll(filepath.Join(root, "intel-rapl:0"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeSysfsZone(t, root, "intel-rapl:1", "package-1", "5", "")
	zones, err := OpenSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 1 || zones[0].Name() != "package-1" {
		t.Fatalf("zones: %v", zones)
	}
}

func TestSysfsIgnoresNonZoneEntries(t *testing.T) {
	root := t.TempDir()
	// Files and colon-free directories are not control zones.
	if err := os.WriteFile(filepath.Join(root, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "dmi"), 0o755); err != nil {
		t.Fatal(err)
	}
	zones, err := OpenSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 0 {
		t.Fatalf("zones from non-zone entries: %v", zones)
	}
}
