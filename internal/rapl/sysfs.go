package rapl

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// DefaultSysfsRoot is where Linux exposes the powercap framework.
const DefaultSysfsRoot = "/sys/class/powercap"

// sysfsZone is a read-only view of one real powercap zone directory.
type sysfsZone struct {
	dir  string
	name string
}

var _ Zone = (*sysfsZone)(nil)

func (z *sysfsZone) Name() string { return z.name }

// readUint reads a decimal uint64 from a file in the zone directory.
// Both read and parse failures surface as *CounterError: a truncated or
// garbage counter file must never read as zero joules.
func (z *sysfsZone) readUint(file string) (uint64, error) {
	path := filepath.Join(z.dir, file)
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, &CounterError{Path: path, Err: err}
	}
	s := strings.TrimSpace(string(b))
	if s == "" {
		return 0, &CounterError{Path: path, Err: fmt.Errorf("empty counter file")}
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, &CounterError{Path: path, Err: err}
	}
	return v, nil
}

func (z *sysfsZone) EnergyMicroJoules() (uint64, error) {
	return z.readUint("energy_uj")
}

func (z *sysfsZone) PowerLimitMicroWatts() (uint64, error) {
	v, err := z.readUint("constraint_0_power_limit_uw")
	if err != nil {
		// errors.Is sees through the CounterError wrapper; a zone
		// without a constraint simply has no limit.
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	return v, nil
}

// MaxEnergyRangeMicroJoules reports the energy counter's wraparound
// modulus from max_energy_range_uj (0 when the kernel does not expose
// it).
func (z *sysfsZone) MaxEnergyRangeMicroJoules() (uint64, error) {
	v, err := z.readUint("max_energy_range_uj")
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	return v, nil
}

// SetPowerLimitMicroWatts is rejected: this backend is deliberately
// read-only (writing RAPL limits needs privileges this tool does not
// assume; use the emulated tree to exercise enforcement).
func (z *sysfsZone) SetPowerLimitMicroWatts(uint64) error {
	return fmt.Errorf("rapl: sysfs backend is read-only")
}

func (z *sysfsZone) Children() []Zone {
	entries, err := os.ReadDir(z.dir)
	if err != nil {
		return nil
	}
	var out []Zone
	for _, e := range entries {
		// Sub-zones are directories named like "intel-rapl:0:0".
		if !e.IsDir() || !strings.Contains(e.Name(), ":") {
			continue
		}
		sub := filepath.Join(z.dir, e.Name())
		if name, err := zoneName(sub); err == nil {
			out = append(out, &sysfsZone{dir: sub, name: name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// zoneName reads a zone directory's "name" file.
func zoneName(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, "name"))
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// OpenSysfs enumerates the top-level RAPL control zones of a real
// /sys/class/powercap tree (root may be "" for the default). It returns
// an empty slice — not an error — on machines without the powercap
// framework, so callers can fall back to the emulated tree.
func OpenSysfs(root string) ([]Zone, error) {
	if root == "" {
		root = DefaultSysfsRoot
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []Zone
	for _, e := range entries {
		// Top-level control zones are "intel-rapl:N" (one per package);
		// deeper zones have two colons and surface via Children.
		if strings.Count(e.Name(), ":") != 1 {
			continue
		}
		dir := filepath.Join(root, e.Name())
		name, err := zoneName(dir)
		if err != nil {
			continue
		}
		out = append(out, &sysfsZone{dir: dir, name: name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}
