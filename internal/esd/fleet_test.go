package esd

import (
	"math"
	"testing"
)

// fleetOf builds n lead-acid devices at the given SoCs.
func fleetOf(t *testing.T, socs []float64) []*Device {
	t.Helper()
	devs := make([]*Device, len(socs))
	for i, s := range socs {
		d, err := NewDevice(LeadAcid(200e3), s)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	return devs
}

func TestPlanFleetShavesDeficitRichestFirst(t *testing.T) {
	devs := fleetOf(t, []float64{0.3, 0.9, 0.6})
	demand := []float64{100, 100, 100}
	// 60 W deficit against a 240 W cap; the richest device (index 1)
	// must cover it alone — it has the power and the energy.
	plan, err := PlanFleet(240, 60, devs, demand)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ShortfallW != 0 {
		t.Fatalf("shortfall %g W with plenty of stored energy", plan.ShortfallW)
	}
	if plan.DischargeW[1] != 60 {
		t.Errorf("richest device discharges %g W, want 60", plan.DischargeW[1])
	}
	if plan.DischargeW[0] != 0 || plan.DischargeW[2] != 0 {
		t.Errorf("poorer devices discharge (%g, %g) W while the richest has capacity", plan.DischargeW[0], plan.DischargeW[2])
	}
	if math.Abs(plan.GridW-240) > 1e-9 {
		t.Errorf("grid %g W, want exactly the 240 W cap", plan.GridW)
	}
}

func TestPlanFleetSpillsToNextDevice(t *testing.T) {
	devs := fleetOf(t, []float64{0.9, 0.9})
	// 120 W deficit exceeds one device's 80 W discharge limit; the
	// second device covers the spill.
	plan, err := PlanFleet(180, 60, devs, []float64{150, 150})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ShortfallW != 0 {
		t.Fatalf("shortfall %g W", plan.ShortfallW)
	}
	if plan.DischargeW[0] != 80 || plan.DischargeW[1] != 40 {
		t.Errorf("discharge split (%g, %g) W, want (80, 40)", plan.DischargeW[0], plan.DischargeW[1])
	}
}

func TestPlanFleetReportsShortfall(t *testing.T) {
	devs := fleetOf(t, []float64{0.25, 0.25})
	// Both devices are near the floor: the fleet cannot cover 200 W of
	// deficit; the remainder must surface as shortfall, not as silent
	// over-draw.
	plan, err := PlanFleet(100, 300, devs, []float64{150, 150})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ShortfallW <= 0 {
		t.Fatal("no shortfall reported from a nearly-empty fleet")
	}
	if got := plan.GridW; got > 100+plan.ShortfallW+1e-9 {
		t.Errorf("grid %g W exceeds cap+shortfall", got)
	}
}

func TestPlanFleetChargesPoorestFirstWithinHeadroom(t *testing.T) {
	devs := fleetOf(t, []float64{0.9, 0.3, 0.6})
	// 50 W headroom under the cap; the poorest device (index 1) banks
	// it, bounded by its 40 W charge limit, and the spill goes to the
	// next-poorest (index 2).
	plan, err := PlanFleet(350, 60, devs, []float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ChargeW[1] != 40 {
		t.Errorf("poorest device charges %g W, want its 40 W limit", plan.ChargeW[1])
	}
	if plan.ChargeW[2] != 10 {
		t.Errorf("next-poorest charges %g W, want the 10 W spill", plan.ChargeW[2])
	}
	if plan.ChargeW[0] != 0 {
		t.Errorf("richest device charges %g W", plan.ChargeW[0])
	}
	if plan.GridW > 350+1e-9 {
		t.Errorf("charging pushed grid to %g W over the 350 W cap", plan.GridW)
	}
}

func TestApplyFleetMatchesPlanAndRespectsSoC(t *testing.T) {
	devs := fleetOf(t, []float64{0.8, 0.4})
	demand := []float64{140, 140}
	for step := 0; step < 200; step++ {
		// Alternate deficit and headroom intervals.
		capW := 240.0
		if step%2 == 1 {
			capW = 320.0
		}
		plan, err := PlanFleet(capW, 30, devs, demand)
		if err != nil {
			t.Fatal(err)
		}
		dis, chg := ApplyFleet(plan, devs, 30)
		if math.Abs(dis-plan.TotalDischargeW()) > 1e-9 {
			t.Fatalf("step %d: applied discharge %g W, planned %g W", step, dis, plan.TotalDischargeW())
		}
		if math.Abs(chg-plan.TotalChargeW()) > 1e-9 {
			t.Fatalf("step %d: applied charge %g W, planned %g W", step, chg, plan.TotalChargeW())
		}
		for i, d := range devs {
			spec := d.Spec()
			if soc := d.SoC(); soc < spec.MinSoC-1e-9 || soc > spec.MaxSoC+1e-9 {
				t.Fatalf("step %d: device %d SoC %g outside [%g, %g]", step, i, soc, spec.MinSoC, spec.MaxSoC)
			}
		}
	}
}

func TestPlanFleetSkipsBatterylessServers(t *testing.T) {
	d, err := NewDevice(LeadAcid(200e3), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	devs := []*Device{nil, d}
	plan, err := PlanFleet(150, 60, devs, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if plan.DischargeW[0] != 0 {
		t.Error("batteryless server asked to discharge")
	}
	if plan.DischargeW[1] != 50 {
		t.Errorf("battery server discharges %g W, want the whole 50 W deficit", plan.DischargeW[1])
	}
	// Apply must tolerate the nil entry.
	ApplyFleet(plan, devs, 60)
}

func TestPlanFleetValidatesInputs(t *testing.T) {
	devs := fleetOf(t, []float64{0.5})
	if _, err := PlanFleet(100, 60, devs, []float64{50, 50}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PlanFleet(100, 0, devs, []float64{50}); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := PlanFleet(-1, 60, devs, []float64{50}); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := PlanFleet(100, 60, devs, []float64{math.NaN()}); err == nil {
		t.Error("NaN demand accepted")
	}
}

func TestStaggeredSoCSpansUsableWindow(t *testing.T) {
	spec := LeadAcid(1000)
	socs := StaggeredSoC(spec, 5)
	if len(socs) != 5 {
		t.Fatalf("%d SoCs for 5 servers", len(socs))
	}
	for i, s := range socs {
		if s < spec.MinSoC || s > spec.MaxSoC {
			t.Errorf("SoC[%d] = %g outside usable window", i, s)
		}
		if i > 0 && socs[i] <= socs[i-1] {
			t.Errorf("SoCs not strictly staggered at %d: %g after %g", i, socs[i], socs[i-1])
		}
	}
	if one := StaggeredSoC(spec, 1); len(one) != 1 || one[0] <= spec.MinSoC || one[0] >= spec.MaxSoC {
		t.Errorf("single-server stagger %v", one)
	}
}
