package esd

import (
	"fmt"
	"math"
	"sort"
)

// Fleet-scale scheduling — the paper's Fig. 12 peak-shaving replay
// extended from one battery to a rack of them. Under a shared cluster
// cap, the question the single-server scheduler never faces appears:
// *who* discharges, and who banks. The planner here answers it the way
// the duty-cycle equation (paper eq. 5) prices a single device, applied
// greedily across the fleet:
//
//   - A deficit (summed demand above the cap) is met by discharging the
//     richest devices first — greatest deliverable energy — so no single
//     battery is deep-cycled while a neighbor sits full. Each device is
//     bounded by its discharge power limit and its SoC floor.
//   - Headroom (cap above summed demand) charges the poorest devices
//     first, so the fleet's deliverable reserve recovers fastest where
//     the next deficit would hurt most. Charging draws grid power, so it
//     never exceeds the headroom.
//
// Ties break by server index, and the plan is a pure function of its
// inputs, so a seeded scenario replays bit-identically.

// FleetPlan is one control interval's cluster-wide charge/discharge
// decision over a fleet of devices.
type FleetPlan struct {
	// DischargeW and ChargeW are the per-device rail powers the plan
	// commits for the interval (at most one of the two is nonzero per
	// device).
	DischargeW []float64
	ChargeW    []float64
	// ShortfallW is demand the cap plus the fleet's whole deliverable
	// discharge could not cover — the unavoidable performance loss the
	// cluster manager must absorb by capping servers.
	ShortfallW float64
	// GridW is the grid draw the plan settles at: demand minus
	// discharges plus charges. Never above the cap except when even
	// zero charging cannot help (ShortfallW > 0 means GridW == capW).
	GridW float64
}

// TotalDischargeW sums the plan's committed discharge power.
func (p FleetPlan) TotalDischargeW() float64 {
	var s float64
	for _, w := range p.DischargeW {
		s += w
	}
	return s
}

// TotalChargeW sums the plan's committed charge power.
func (p FleetPlan) TotalChargeW() float64 {
	var s float64
	for _, w := range p.ChargeW {
		s += w
	}
	return s
}

// PlanFleet decides one interval's charge/discharge split across a
// fleet of per-server devices under a shared cluster cap. devs[i] may
// be nil (a server without a battery); demandW[i] is that server's
// unassisted grid draw for the interval. The plan is read-only — apply
// it with ApplyFleet to move energy.
func PlanFleet(capW, dt float64, devs []*Device, demandW []float64) (FleetPlan, error) {
	if len(devs) != len(demandW) {
		return FleetPlan{}, fmt.Errorf("esd: %d devices for %d demands", len(devs), len(demandW))
	}
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return FleetPlan{}, fmt.Errorf("esd: fleet step dt %g s", dt)
	}
	if capW < 0 || math.IsNaN(capW) || math.IsInf(capW, 0) {
		return FleetPlan{}, fmt.Errorf("esd: fleet cap %g W", capW)
	}
	var demand float64
	for i, w := range demandW {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return FleetPlan{}, fmt.Errorf("esd: server %d demand %g W", i, w)
		}
		demand += w
	}
	plan := FleetPlan{
		DischargeW: make([]float64, len(devs)),
		ChargeW:    make([]float64, len(devs)),
	}
	if deficit := demand - capW; deficit > 0 {
		// Peak shave: discharge richest-first until the deficit is met
		// or the fleet runs dry.
		order := byDeliverable(devs, dt)
		remain := deficit
		for _, i := range order {
			if remain <= 0 {
				break
			}
			d := devs[i]
			avail := math.Min(d.Spec().MaxDischargeW, d.AvailableJ()/dt)
			w := math.Min(remain, avail)
			if w <= 0 {
				continue
			}
			plan.DischargeW[i] = w
			remain -= w
		}
		plan.ShortfallW = remain
		plan.GridW = demand - (deficit - remain)
		return plan, nil
	}
	// Valley fill: bank the headroom poorest-first. Charging adds grid
	// draw, so the committed charge never exceeds the headroom.
	headroom := capW - demand
	order := bySoC(devs)
	for _, i := range order {
		if headroom <= 0 {
			break
		}
		d := devs[i]
		// Rail power the device can still usefully accept this interval.
		accept := math.Min(d.Spec().MaxChargeW, d.HeadroomJ()/(d.Spec().ChargeEff*dt))
		w := math.Min(headroom, accept)
		if w <= 0 {
			continue
		}
		plan.ChargeW[i] = w
		headroom -= w
	}
	plan.GridW = demand + plan.TotalChargeW()
	return plan, nil
}

// ApplyFleet executes a plan against the devices for dt seconds and
// returns the rail power actually moved (discharged, charged). The
// plan's bounds mirror the devices' own clamps, so actual equals
// planned; the return values let callers assert that.
func ApplyFleet(plan FleetPlan, devs []*Device, dt float64) (dischargedW, chargedW float64) {
	for i, d := range devs {
		if d == nil {
			continue
		}
		if w := plan.DischargeW[i]; w > 0 {
			dischargedW += d.Discharge(w, dt)
		}
		if w := plan.ChargeW[i]; w > 0 {
			chargedW += d.Charge(w, dt)
		}
		if plan.DischargeW[i] == 0 && plan.ChargeW[i] == 0 {
			d.Idle(dt)
		}
	}
	return dischargedW, chargedW
}

// byDeliverable orders device indices by deliverable energy,
// richest first, ties by index.
func byDeliverable(devs []*Device, dt float64) []int {
	idx := withBatteries(devs)
	sort.SliceStable(idx, func(a, b int) bool {
		return devs[idx[a]].AvailableJ() > devs[idx[b]].AvailableJ()
	})
	return idx
}

// bySoC orders device indices by state of charge, poorest first, ties
// by index.
func bySoC(devs []*Device) []int {
	idx := withBatteries(devs)
	sort.SliceStable(idx, func(a, b int) bool {
		return devs[idx[a]].SoC() < devs[idx[b]].SoC()
	})
	return idx
}

// withBatteries returns the indices of non-nil devices in order.
func withBatteries(devs []*Device) []int {
	idx := make([]int, 0, len(devs))
	for i, d := range devs {
		if d != nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// StaggeredSoC returns n initial states of charge spread evenly across
// a spec's usable window — the "battery fleet with staggered SoC"
// scenario setup: no two servers start equally provisioned, so the
// discharge order matters from the first interval.
func StaggeredSoC(spec Spec, n int) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	lo := spec.MinSoC + 0.05*(spec.MaxSoC-spec.MinSoC)
	hi := spec.MaxSoC - 0.05*(spec.MaxSoC-spec.MinSoC)
	for i := range out {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		out[i] = lo + frac*(hi-lo)
	}
	return out
}
