// Package esd models the server-local energy storage device (the paper's
// R4 knob): a battery that banks energy while the power cap has headroom
// and discharges to let applications exceed the cap later, time-shifting
// power the way no direct resource can be shifted.
//
// The model tracks state of charge under charge/discharge power limits,
// a round-trip efficiency split between the two directions, usable
// depth-of-discharge bounds, self-discharge, and cycle accounting — the
// characteristics the Coordinator's duty-cycle equation (paper eq. 5)
// needs, parameterized for the paper's lead-acid UPS.
package esd

import (
	"fmt"
	"math"
)

// Spec describes an energy storage device.
type Spec struct {
	// Name identifies the chemistry/profile.
	Name string
	// CapacityJ is the nameplate energy capacity in joules.
	CapacityJ float64
	// MaxChargeW and MaxDischargeW bound charge and discharge power.
	MaxChargeW    float64
	MaxDischargeW float64
	// ChargeEff and DischargeEff split the round-trip efficiency: of P
	// watts pushed in, ChargeEff*P reaches the store; of E joules
	// drawn from the store, DischargeEff*E reaches the rails.
	ChargeEff    float64
	DischargeEff float64
	// MinSoC and MaxSoC bound the usable state-of-charge window as
	// fractions of CapacityJ (lead-acid should not be deep-cycled).
	MinSoC float64
	MaxSoC float64
	// SelfDischargePerSec is the fractional stored-energy loss per
	// second while idle.
	SelfDischargePerSec float64
}

// LeadAcid returns the paper's lead-acid UPS profile scaled to capacityJ
// joules of nameplate energy. Its round-trip efficiency of 0.75
// reproduces the paper's 60-40 OFF-ON duty cycle at the 80 W cap.
func LeadAcid(capacityJ float64) Spec {
	return Spec{
		Name:                "lead-acid",
		CapacityJ:           capacityJ,
		MaxChargeW:          40,
		MaxDischargeW:       80,
		ChargeEff:           0.85,
		DischargeEff:        0.88, // 0.85*0.88 ~ 0.75 round trip
		MinSoC:              0.20,
		MaxSoC:              0.95,
		SelfDischargePerSec: 1e-7, // ~0.9%/day shelf loss
	}
}

// LiIon returns a lithium-ion profile scaled to capacityJ joules: higher
// round-trip efficiency, deeper usable depth-of-discharge and higher
// power limits than lead-acid, at the cycle-life sensitivity the wear
// accounting tracks — the main alternative the datacenter storage
// literature weighs against lead-acid.
func LiIon(capacityJ float64) Spec {
	return Spec{
		Name:                "li-ion",
		CapacityJ:           capacityJ,
		MaxChargeW:          80,
		MaxDischargeW:       160,
		ChargeEff:           0.95,
		DischargeEff:        0.96, // ~0.91 round trip
		MinSoC:              0.10,
		MaxSoC:              0.95,
		SelfDischargePerSec: 2e-8, // ~0.2%/day
	}
}

// Ideal returns a lossless, power-unbounded store of the given capacity,
// used by ablations to bound the R4 benefit.
func Ideal(capacityJ float64) Spec {
	return Spec{
		Name:          "ideal",
		CapacityJ:     capacityJ,
		MaxChargeW:    math.Inf(1),
		MaxDischargeW: math.Inf(1),
		ChargeEff:     1,
		DischargeEff:  1,
		MinSoC:        0,
		MaxSoC:        1,
	}
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.CapacityJ <= 0:
		return fmt.Errorf("esd: %s: capacity must be positive, got %g J", s.Name, s.CapacityJ)
	case s.MaxChargeW <= 0 || s.MaxDischargeW <= 0:
		return fmt.Errorf("esd: %s: power limits must be positive (%g, %g)", s.Name, s.MaxChargeW, s.MaxDischargeW)
	case s.ChargeEff <= 0 || s.ChargeEff > 1 || s.DischargeEff <= 0 || s.DischargeEff > 1:
		return fmt.Errorf("esd: %s: efficiencies must be in (0, 1] (%g, %g)", s.Name, s.ChargeEff, s.DischargeEff)
	case s.MinSoC < 0 || s.MaxSoC > 1 || s.MinSoC >= s.MaxSoC:
		return fmt.Errorf("esd: %s: SoC window [%g, %g] is invalid", s.Name, s.MinSoC, s.MaxSoC)
	case s.SelfDischargePerSec < 0:
		return fmt.Errorf("esd: %s: self-discharge must be non-negative, got %g", s.Name, s.SelfDischargePerSec)
	}
	return nil
}

// RoundTripEff returns the charge*discharge efficiency product, the η of
// the paper's equation (5).
func (s Spec) RoundTripEff() float64 { return s.ChargeEff * s.DischargeEff }

// UsableJ returns the energy available between the SoC bounds.
func (s Spec) UsableJ() float64 { return s.CapacityJ * (s.MaxSoC - s.MinSoC) }

// Device is a stateful instance of a Spec.
type Device struct {
	spec    Spec
	storedJ float64

	chargedJ    float64 // lifetime energy accepted into the store
	dischargedJ float64 // lifetime energy drawn from the store
}

// NewDevice builds a device starting at the given state of charge
// (fraction of nameplate capacity, clamped into the usable window).
func NewDevice(spec Spec, soc float64) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if soc < spec.MinSoC {
		soc = spec.MinSoC
	}
	if soc > spec.MaxSoC {
		soc = spec.MaxSoC
	}
	return &Device{spec: spec, storedJ: soc * spec.CapacityJ}, nil
}

// Spec returns the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// SoC returns the state of charge as a fraction of nameplate capacity.
func (d *Device) SoC() float64 { return d.storedJ / d.spec.CapacityJ }

// StoredJ returns the energy currently in the store.
func (d *Device) StoredJ() float64 { return d.storedJ }

// AvailableJ returns the deliverable energy: what discharging down to
// MinSoC would put on the rails after discharge losses.
func (d *Device) AvailableJ() float64 {
	usable := d.storedJ - d.spec.MinSoC*d.spec.CapacityJ
	if usable < 0 {
		return 0
	}
	return usable * d.spec.DischargeEff
}

// HeadroomJ returns how much more energy the store can accept (measured
// at the store, after charge losses).
func (d *Device) HeadroomJ() float64 {
	h := d.spec.MaxSoC*d.spec.CapacityJ - d.storedJ
	if h < 0 {
		return 0
	}
	return h
}

// Charge pushes up to watts of rail power into the device for dt
// seconds and returns the rail power actually accepted (limited by the
// charge power bound and the SoC ceiling).
func (d *Device) Charge(watts, dt float64) float64 {
	if watts <= 0 || dt <= 0 {
		return 0
	}
	if watts > d.spec.MaxChargeW {
		watts = d.spec.MaxChargeW
	}
	// Rail power needed to fill remaining headroom exactly.
	maxRail := d.HeadroomJ() / (d.spec.ChargeEff * dt)
	if watts > maxRail {
		watts = maxRail
	}
	stored := watts * d.spec.ChargeEff * dt
	d.storedJ += stored
	d.chargedJ += stored
	return watts
}

// Discharge draws up to watts of rail power from the device for dt
// seconds and returns the rail power actually delivered (limited by the
// discharge power bound and the SoC floor).
func (d *Device) Discharge(watts, dt float64) float64 {
	if watts <= 0 || dt <= 0 {
		return 0
	}
	if watts > d.spec.MaxDischargeW {
		watts = d.spec.MaxDischargeW
	}
	maxRail := d.AvailableJ() / dt
	if watts > maxRail {
		watts = maxRail
	}
	fromStore := watts * dt / d.spec.DischargeEff
	d.storedJ -= fromStore
	d.dischargedJ += fromStore
	return watts
}

// Idle applies self-discharge over dt seconds.
func (d *Device) Idle(dt float64) {
	if dt <= 0 || d.spec.SelfDischargePerSec == 0 {
		return
	}
	d.storedJ *= math.Exp(-d.spec.SelfDischargePerSec * dt)
	if floor := 0.0; d.storedJ < floor {
		d.storedJ = floor
	}
}

// EquivalentFullCycles returns lifetime throughput in full-capacity
// cycle equivalents, the quantity battery wear models consume. The paper
// notes its stringent-cap-only usage leaves lead-acid life dominated by
// shelf life rather than cycling.
func (d *Device) EquivalentFullCycles() float64 {
	return d.dischargedJ / d.spec.CapacityJ
}
