package esd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpecValidation(t *testing.T) {
	good := LeadAcid(1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("lead-acid spec invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"capacity", func(s *Spec) { s.CapacityJ = 0 }},
		{"charge-power", func(s *Spec) { s.MaxChargeW = 0 }},
		{"discharge-power", func(s *Spec) { s.MaxDischargeW = -1 }},
		{"charge-eff", func(s *Spec) { s.ChargeEff = 1.2 }},
		{"discharge-eff", func(s *Spec) { s.DischargeEff = 0 }},
		{"soc-window", func(s *Spec) { s.MinSoC = 0.9; s.MaxSoC = 0.5 }},
		{"self-discharge", func(s *Spec) { s.SelfDischargePerSec = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := LeadAcid(1000)
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted bad %s", tc.name)
			}
		})
	}
}

func TestLeadAcidRoundTripMatchesEq5(t *testing.T) {
	s := LeadAcid(1000)
	// The paper's eq. (5) 60-40 OFF-ON split at the 80 W cap needs a
	// round-trip efficiency near 0.75.
	if eta := s.RoundTripEff(); math.Abs(eta-0.748) > 0.01 {
		t.Errorf("lead-acid round trip = %g, want ~0.75", eta)
	}
}

func TestChargeRespectsLimitsAndCeiling(t *testing.T) {
	dev, err := NewDevice(LeadAcid(1000), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Offered power above the charge limit is clipped.
	accepted := dev.Charge(1000, 1)
	if accepted > dev.Spec().MaxChargeW+1e-9 {
		t.Errorf("accepted %g W over the %g W charge limit", accepted, dev.Spec().MaxChargeW)
	}
	// Filling to the ceiling stops accepting.
	for i := 0; i < 10000; i++ {
		if dev.Charge(40, 1) == 0 {
			break
		}
	}
	if soc := dev.SoC(); math.Abs(soc-dev.Spec().MaxSoC) > 1e-6 {
		t.Errorf("SoC after saturation = %g, want ceiling %g", soc, dev.Spec().MaxSoC)
	}
	if dev.Charge(40, 1) > 1e-9 {
		t.Error("full device still accepts charge")
	}
}

func TestDischargeRespectsLimitsAndFloor(t *testing.T) {
	dev, err := NewDevice(LeadAcid(1000), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	delivered := dev.Discharge(1000, 0.1)
	if delivered > dev.Spec().MaxDischargeW+1e-9 {
		t.Errorf("delivered %g W over the %g W discharge limit", delivered, dev.Spec().MaxDischargeW)
	}
	for i := 0; i < 10000; i++ {
		if dev.Discharge(80, 1) == 0 {
			break
		}
	}
	if soc := dev.SoC(); math.Abs(soc-dev.Spec().MinSoC) > 1e-6 {
		t.Errorf("SoC after depletion = %g, want floor %g", soc, dev.Spec().MinSoC)
	}
	if dev.Discharge(10, 1) > 1e-9 {
		t.Error("empty device still delivers")
	}
}

func TestEnergyConservationRoundTrip(t *testing.T) {
	spec := LeadAcid(100000)
	dev, err := NewDevice(spec, spec.MinSoC)
	if err != nil {
		t.Fatal(err)
	}
	// Push a known rail energy in, then drain fully; delivered rail
	// energy must equal input times the round-trip efficiency.
	var inJ float64
	for i := 0; i < 100; i++ {
		inJ += dev.Charge(30, 1) * 1
	}
	var outJ float64
	for i := 0; i < 10000; i++ {
		got := dev.Discharge(50, 0.1) * 0.1
		if got == 0 {
			break
		}
		outJ += got
	}
	want := inJ * spec.RoundTripEff()
	if math.Abs(outJ-want) > 1e-6*want+1e-9 {
		t.Errorf("round trip: in %g J -> out %g J, want %g", inJ, outJ, want)
	}
	if cycles := dev.EquivalentFullCycles(); cycles <= 0 {
		t.Error("no cycle accounting after a full round trip")
	}
}

func TestSoCBoundsInvariant(t *testing.T) {
	spec := LeadAcid(5000)
	prop := func(ops []int8) bool {
		dev, err := NewDevice(spec, 0.5)
		if err != nil {
			return false
		}
		for _, op := range ops {
			switch {
			case op > 40:
				dev.Charge(float64(op), 0.5)
			case op < -40:
				dev.Discharge(float64(-op), 0.5)
			default:
				dev.Idle(1)
			}
			if soc := dev.SoC(); soc < spec.MinSoC-1e-9 || soc > spec.MaxSoC+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSelfDischargeDecays(t *testing.T) {
	dev, err := NewDevice(LeadAcid(1000), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	before := dev.StoredJ()
	dev.Idle(86400) // one day
	after := dev.StoredJ()
	if after >= before {
		t.Error("no self-discharge over a day")
	}
	if loss := 1 - after/before; loss > 0.05 {
		t.Errorf("lost %.1f%% in a day, want under ~1%%", loss*100)
	}
}

func TestIdealStore(t *testing.T) {
	spec := Ideal(1000)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.RoundTripEff() != 1 {
		t.Error("ideal store has losses")
	}
	dev, err := NewDevice(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := dev.Charge(500, 1)
	if in != 500 {
		t.Errorf("ideal accepted %g of 500 W", in)
	}
	out := dev.Discharge(500, 1)
	if math.Abs(out-500) > 1e-9 {
		t.Errorf("ideal delivered %g of 500 W", out)
	}
}

func TestInitialSoCClamped(t *testing.T) {
	dev, err := NewDevice(LeadAcid(1000), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if soc := dev.SoC(); soc > dev.Spec().MaxSoC {
		t.Errorf("initial SoC %g above ceiling", soc)
	}
	dev, err = NewDevice(LeadAcid(1000), -1)
	if err != nil {
		t.Fatal(err)
	}
	if soc := dev.SoC(); soc < dev.Spec().MinSoC {
		t.Errorf("initial SoC %g below floor", soc)
	}
}

func TestZeroAndNegativeOpsAreNoOps(t *testing.T) {
	dev, _ := NewDevice(LeadAcid(1000), 0.5)
	before := dev.StoredJ()
	if dev.Charge(-5, 1) != 0 || dev.Charge(5, -1) != 0 {
		t.Error("invalid charge moved energy")
	}
	if dev.Discharge(-5, 1) != 0 || dev.Discharge(5, 0) != 0 {
		t.Error("invalid discharge moved energy")
	}
	if dev.StoredJ() != before {
		t.Error("no-op operations changed stored energy")
	}
}

func TestLiIonBeatsLeadAcidCharacteristics(t *testing.T) {
	la, li := LeadAcid(1000), LiIon(1000)
	if err := li.Validate(); err != nil {
		t.Fatal(err)
	}
	if li.RoundTripEff() <= la.RoundTripEff() {
		t.Errorf("li-ion round trip %.3f not above lead-acid %.3f", li.RoundTripEff(), la.RoundTripEff())
	}
	if li.UsableJ() <= la.UsableJ() {
		t.Errorf("li-ion usable window %.0f J not above lead-acid %.0f J", li.UsableJ(), la.UsableJ())
	}
	if li.MaxDischargeW <= la.MaxDischargeW {
		t.Error("li-ion discharge power not above lead-acid")
	}
}
