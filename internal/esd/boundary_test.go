package esd

import (
	"math"
	"testing"
)

// Boundary behavior: the scenario campaigns drive devices to their
// rails on purpose, so the clamps at empty, full, zero capacity, and
// over-rated power are load-bearing invariants, not incidental detail.

func TestDischargeAtExactFloorDeliversNothing(t *testing.T) {
	spec := LeadAcid(10e3)
	dev, err := NewDevice(spec, spec.MinSoC)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.Discharge(spec.MaxDischargeW, 1); got != 0 {
		t.Errorf("device at the SoC floor delivered %g W", got)
	}
	if soc := dev.SoC(); math.Abs(soc-spec.MinSoC) > 1e-12 {
		t.Errorf("SoC moved to %g from the floor %g", soc, spec.MinSoC)
	}
	if dev.AvailableJ() != 0 {
		t.Errorf("AvailableJ %g at the floor", dev.AvailableJ())
	}
}

func TestChargeAtExactCeilingAcceptsNothing(t *testing.T) {
	spec := LeadAcid(10e3)
	dev, err := NewDevice(spec, spec.MaxSoC)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.Charge(spec.MaxChargeW, 1); got != 0 {
		t.Errorf("device at the SoC ceiling accepted %g W", got)
	}
	if soc := dev.SoC(); math.Abs(soc-spec.MaxSoC) > 1e-12 {
		t.Errorf("SoC moved to %g from the ceiling %g", soc, spec.MaxSoC)
	}
	if dev.HeadroomJ() != 0 {
		t.Errorf("HeadroomJ %g at the ceiling", dev.HeadroomJ())
	}
}

func TestDischargeNeverUndershootsFloor(t *testing.T) {
	// Just above the floor with a draw that would blow through it in
	// one step: the device must deliver exactly the remaining usable
	// energy and stop at the floor, never below.
	spec := LeadAcid(10e3)
	dev, err := NewDevice(spec, spec.MinSoC+0.01)
	if err != nil {
		t.Fatal(err)
	}
	delivered := dev.Discharge(spec.MaxDischargeW, 60)
	wantJ := 0.01 * spec.CapacityJ * spec.DischargeEff
	if gotJ := delivered * 60; math.Abs(gotJ-wantJ) > 1e-6*wantJ {
		t.Errorf("delivered %g J, want the remaining %g J", gotJ, wantJ)
	}
	if soc := dev.SoC(); soc < spec.MinSoC-1e-12 {
		t.Errorf("SoC %g undershot the floor %g", soc, spec.MinSoC)
	}
}

func TestChargeNeverOvershootsCeiling(t *testing.T) {
	spec := LeadAcid(10e3)
	dev, err := NewDevice(spec, spec.MaxSoC-0.01)
	if err != nil {
		t.Fatal(err)
	}
	accepted := dev.Charge(spec.MaxChargeW, 600)
	if soc := dev.SoC(); soc > spec.MaxSoC+1e-12 {
		t.Errorf("SoC %g overshot the ceiling %g", soc, spec.MaxSoC)
	}
	wantRailJ := 0.01 * spec.CapacityJ / spec.ChargeEff
	if gotJ := accepted * 600; math.Abs(gotJ-wantRailJ) > 1e-6*wantRailJ {
		t.Errorf("accepted %g J of rail energy, want %g J to fill exactly", gotJ, wantRailJ)
	}
}

func TestZeroCapacityBatteryRejected(t *testing.T) {
	spec := LeadAcid(0)
	if err := spec.Validate(); err == nil {
		t.Error("zero-capacity spec validated")
	}
	if _, err := NewDevice(spec, 0.5); err == nil {
		t.Error("NewDevice accepted a zero-capacity battery")
	}
	neg := LeadAcid(-100)
	if _, err := NewDevice(neg, 0.5); err == nil {
		t.Error("NewDevice accepted a negative-capacity battery")
	}
}

func TestDischargeRequestAboveRatedPowerClamps(t *testing.T) {
	spec := LeadAcid(1e6)
	dev, err := NewDevice(spec, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Ten times the rated discharge power: delivery must clamp at the
	// rating, not scale with the request.
	if got := dev.Discharge(10*spec.MaxDischargeW, 1); math.Abs(got-spec.MaxDischargeW) > 1e-9 {
		t.Errorf("delivered %g W against a %g W rating", got, spec.MaxDischargeW)
	}
	if got := dev.Charge(10*spec.MaxChargeW, 1); math.Abs(got-spec.MaxChargeW) > 1e-9 {
		t.Errorf("accepted %g W against a %g W charge rating", got, spec.MaxChargeW)
	}
}

func TestInfiniteDischargeRequestOnBoundedDevice(t *testing.T) {
	spec := LeadAcid(1e6)
	dev, err := NewDevice(spec, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got := dev.Discharge(math.Inf(1), 1); math.Abs(got-spec.MaxDischargeW) > 1e-9 {
		t.Errorf("infinite request delivered %g W, want the %g W rating", got, spec.MaxDischargeW)
	}
}

func TestRepeatedBoundaryCyclingStaysInWindow(t *testing.T) {
	spec := LiIon(50e3)
	dev, err := NewDevice(spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Slam the device against both rails repeatedly; the SoC must stay
	// pinned inside the usable window throughout.
	for cycle := 0; cycle < 20; cycle++ {
		for i := 0; i < 100; i++ {
			dev.Discharge(spec.MaxDischargeW, 10)
		}
		if soc := dev.SoC(); soc < spec.MinSoC-1e-9 {
			t.Fatalf("cycle %d: SoC %g below floor", cycle, soc)
		}
		for i := 0; i < 100; i++ {
			dev.Charge(spec.MaxChargeW, 10)
		}
		if soc := dev.SoC(); soc > spec.MaxSoC+1e-9 {
			t.Fatalf("cycle %d: SoC %g above ceiling", cycle, soc)
		}
	}
	if cycles := dev.EquivalentFullCycles(); cycles <= 0 {
		t.Error("no wear accounted across 20 full cycles")
	}
}
