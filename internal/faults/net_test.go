package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func netGet(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

// A dropped request must never reach the server and must surface as a
// transient error the retry machinery recognizes.
func TestNetInjectorDropRequest(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()
	in, err := NewNetInjector(NetConfig{Seed: 1, DropReqP: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := netGet(t, in, srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatal("DropReqP=1 let a request through")
	}
	if !IsTransient(err) || !errors.Is(err, ErrNetDrop) {
		t.Fatalf("drop error not transient: %v", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests through a full drop", hits.Load())
	}
	if in.Counts().ReqDrops != 1 {
		t.Fatalf("counts %+v", in.Counts())
	}
}

// A dropped response is the other half of RPC ambiguity: the server
// processes the request, the caller still sees a failure.
func TestNetInjectorDropResponse(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()
	in, err := NewNetInjector(NetConfig{Seed: 1, DropRespP: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := netGet(t, in, srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("DropRespP=1 returned a response")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (the effect lands)", hits.Load())
	}
}

// A duplicated POST must deliver the identical body twice; the caller
// sees one (the second) response.
func TestNetInjectorDuplicate(t *testing.T) {
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
	}))
	defer srv.Close()
	in, err := NewNetInjector(NetConfig{Seed: 1, DupP: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL, strings.NewReader(`{"seq":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := in.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bodies) != 2 || bodies[0] != bodies[1] || bodies[0] != `{"seq":7}` {
		t.Fatalf("duplicated delivery saw bodies %q", bodies)
	}
}

// A blackholed host fails deterministically until restored.
func TestNetInjectorBlackhole(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	in, err := NewNetInjector(NetConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	host := strings.TrimPrefix(srv.URL, "http://")
	in.SetDown(host, true)
	for i := 0; i < 3; i++ {
		if resp, err := netGet(t, in, srv.URL); err == nil {
			resp.Body.Close()
			t.Fatal("blackholed host reachable")
		}
	}
	in.SetDown(host, false)
	resp, err := netGet(t, in, srv.URL)
	if err != nil {
		t.Fatalf("restored host unreachable: %v", err)
	}
	resp.Body.Close()
	if in.Counts().Blackholed != 3 {
		t.Fatalf("counts %+v", in.Counts())
	}
}

// Heal must stop probabilistic faults mid-run.
func TestNetInjectorHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	in, err := NewNetInjector(NetConfig{Seed: 2, DropReqP: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := netGet(t, in, srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("pre-heal request survived DropReqP=1")
	}
	in.Heal()
	resp, err := netGet(t, in, srv.URL)
	if err != nil {
		t.Fatalf("post-heal request failed: %v", err)
	}
	resp.Body.Close()
}

// Config validation refuses out-of-range rates.
func TestNetConfigValidate(t *testing.T) {
	if err := (NetConfig{DropReqP: 1.5}).Validate(); err == nil {
		t.Error("DropReqP 1.5 accepted")
	}
	if err := (NetConfig{DelayMax: -1}).Validate(); err == nil {
		t.Error("negative DelayMax accepted")
	}
	if (NetConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(NetConfig{DupP: 0.1}).Enabled() {
		t.Error("dup-only config reports disabled")
	}
}
