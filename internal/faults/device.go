package faults

import (
	"powerstruggle/internal/esd"
)

// Device wraps an energy storage device with sensor-fault injection: the
// state-of-charge read sticks at zero with probability SoCMisreadP (a
// failed fuel gauge). Energy flow itself passes through — the physics
// does not fault, only the measurement of it — so schedules keep their
// energy balance while consumers of the SoC telemetry see garbage.
type Device struct {
	inj *Injector
	dev *esd.Device
	// now supplies simulated time for event stamps.
	now func() float64
}

// NewDevice wraps dev. now supplies simulated time for event stamps and
// may be nil.
func NewDevice(inj *Injector, dev *esd.Device, now func() float64) *Device {
	return &Device{inj: inj, dev: dev, now: now}
}

// Underlying returns the wrapped device.
func (d *Device) Underlying() *esd.Device { return d.dev }

func (d *Device) at() float64 {
	if d.now != nil {
		return d.now()
	}
	return 0
}

// SoC returns the state of charge, or zero on an injected misread.
func (d *Device) SoC() float64 {
	if d.inj.hit(d.inj.cfg.SoCMisreadP) {
		d.inj.record(d.at(), "soc-misread", "battery", "state-of-charge read stuck at zero")
		return 0
	}
	return d.dev.SoC()
}

// AvailableJ passes through: the brownout guard must see true deliverable
// energy (it protects the cap; lying to it would make the guard itself a
// fault amplifier — the SoC telemetry fault above covers misreads).
func (d *Device) AvailableJ() float64 { return d.dev.AvailableJ() }

// Charge passes through.
func (d *Device) Charge(watts, dt float64) float64 { return d.dev.Charge(watts, dt) }

// Discharge passes through.
func (d *Device) Discharge(watts, dt float64) float64 { return d.dev.Discharge(watts, dt) }

// Idle passes through.
func (d *Device) Idle(dt float64) { d.dev.Idle(dt) }
