package faults

import (
	"fmt"

	"powerstruggle/internal/heartbeat"
)

// Heartbeats wraps a heartbeat monitor with delivery-loss injection:
// beat batches vanish with probability BeatDropP, and every beat is
// swallowed during a server dropout window. Rates computed downstream
// then under-report or flatline — the stale-telemetry condition the
// accountant's fair-share degradation guards against.
type Heartbeats struct {
	inj *Injector
	mon *heartbeat.Monitor
	// now returns the current simulated time for dropout-window checks
	// and event stamps; heartbeat delivery has no clock of its own.
	now func() float64
}

// NewHeartbeats wraps mon. now supplies simulated time (may be nil, in
// which case beat timestamps stamp the events and the dropout window is
// checked against them).
func NewHeartbeats(inj *Injector, mon *heartbeat.Monitor, now func() float64) *Heartbeats {
	return &Heartbeats{inj: inj, mon: mon, now: now}
}

// Underlying returns the wrapped monitor.
func (h *Heartbeats) Underlying() *heartbeat.Monitor { return h.mon }

// Register passes through: producer registration is local bookkeeping.
func (h *Heartbeats) Register(name string, windowSeconds float64) error {
	return h.mon.Register(name, windowSeconds)
}

// Unregister passes through.
func (h *Heartbeats) Unregister(name string) { h.mon.Unregister(name) }

// Beat delivers count heartbeats from name at time t, dropping the
// batch with probability BeatDropP (and always during a dropout
// window). A dropped batch is silent — the producer believes it
// reported.
func (h *Heartbeats) Beat(name string, t, count float64) error {
	now := t
	if h.now != nil {
		now = h.now()
	}
	if h.inj.droppedOut(now) {
		h.inj.record(now, "beat-drop", name, "heartbeat lost in server dropout")
		return nil
	}
	if h.inj.hit(h.inj.cfg.BeatDropP) {
		h.inj.record(now, "beat-drop", name, fmt.Sprintf("batch of %.2f beats lost", count))
		return nil
	}
	return h.mon.Beat(name, t, count)
}

// Rate passes through: the monitor's view is already degraded by
// whatever deliveries were lost.
func (h *Heartbeats) Rate(name string, now float64) (float64, error) {
	return h.mon.Rate(name, now)
}

// Total passes through.
func (h *Heartbeats) Total(name string) (float64, error) { return h.mon.Total(name) }
