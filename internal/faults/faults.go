// Package faults is a deterministic, seed-driven fault injector for the
// mediated server: it wraps the simulated platform, the heartbeat
// monitor, and the energy storage device behind thin shims that fail,
// stick, delay, or go silent with configured probabilities. The runtime's
// premise — every knob write lands, every sensor read is fresh — is
// exactly what real powercap stacks cannot assume, so the injector is the
// standing soak harness for the hardened mediation loop: bounded retries,
// the cap-breach watchdog, fair-share degradation on telemetry loss, and
// cluster re-apportioning on server dropouts all exist to survive what
// this package throws at them.
//
// Determinism: all randomness comes from one seeded stream consumed in a
// defined order, so a run is bit-reproducible under a fixed seed. A
// probability of zero never draws from the stream, and a Config with
// every fault disabled makes consumers skip the wrappers entirely — the
// fault-free path pays nothing and stays bit-identical to the unwrapped
// runtime.
//
// Observability: SetObserver mirrors every injected event into the
// caller's metrics (the executor wires it to ps_faults_injected_total),
// so injected-vs-observed fault gaps are queryable without reading the
// log (docs/METRICS.md).
package faults

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrTransient marks an injected actuation failure that a retry may
// clear — the analogue of an EAGAIN from a powercap sysfs write or a
// dropped IPMI command.
var ErrTransient = errors.New("faults: transient actuation failure")

// ErrDropout marks an actuation refused because the whole server is in
// an injected dropout window (crashed, rebooting, or unreachable).
// Retries within the window do not help; consumers degrade instead.
var ErrDropout = errors.New("faults: server dropped out")

// IsTransient reports whether err is an injected fault that consumers
// should absorb with retries or graceful degradation, as opposed to a
// programmer error that must stay fatal.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrDropout)
}

// Config sets the injected fault rates. The zero value injects nothing.
type Config struct {
	// Seed drives the injector's random stream; runs with equal seeds
	// and rates are bit-identical.
	Seed int64
	// KnobWriteFailP is the probability that one actuation write — a
	// DVFS/core/DRAM knob write, a run/suspend command, or a sleep
	// command — fails transiently.
	KnobWriteFailP float64
	// StuckDVFSP is the probability that a knob write silently leaves
	// the frequency at its previous value (a stuck P-state transition);
	// the write reports success, so only telemetry reveals it.
	StuckDVFSP float64
	// MemDelayP is the probability that a knob write applies the
	// previous DRAM limit instead of the new one (RAPL limit latency).
	MemDelayP float64
	// EnergyStaleP is the probability that an energy-counter read
	// returns the previous value instead of a fresh one.
	EnergyStaleP float64
	// BeatDropP is the probability that one heartbeat batch is lost in
	// delivery.
	BeatDropP float64
	// SoCMisreadP is the probability that a battery state-of-charge
	// read returns zero (a stuck fuel-gauge sensor).
	SoCMisreadP float64
	// DropoutAtS and DropoutForS define a whole-server dropout window
	// [DropoutAtS, DropoutAtS+DropoutForS) in simulated seconds during
	// which every actuation fails with ErrDropout. DropoutForS <= 0
	// disables the window.
	DropoutAtS  float64
	DropoutForS float64
	// MaxLogEvents bounds the injector's event log (0 means
	// DefaultMaxEvents).
	MaxLogEvents int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"KnobWriteFailP", c.KnobWriteFailP},
		{"StuckDVFSP", c.StuckDVFSP},
		{"MemDelayP", c.MemDelayP},
		{"EnergyStaleP", c.EnergyStaleP},
		{"BeatDropP", c.BeatDropP},
		{"SoCMisreadP", c.SoCMisreadP},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s = %g outside [0, 1]", p.name, p.v)
		}
	}
	if c.DropoutForS < 0 {
		return fmt.Errorf("faults: DropoutForS = %g is negative", c.DropoutForS)
	}
	if c.DropoutForS > 0 && c.DropoutAtS < 0 {
		return fmt.Errorf("faults: DropoutAtS = %g is negative", c.DropoutAtS)
	}
	return nil
}

// Enabled reports whether any fault can fire. Consumers skip the
// wrappers entirely when false, keeping the fault-free path identical to
// the unwrapped runtime.
func (c Config) Enabled() bool {
	return c.KnobWriteFailP > 0 || c.StuckDVFSP > 0 || c.MemDelayP > 0 ||
		c.EnergyStaleP > 0 || c.BeatDropP > 0 || c.SoCMisreadP > 0 ||
		c.DropoutForS > 0
}

// Injector is the shared fault source behind the wrappers: one random
// stream, one event log.
type Injector struct {
	cfg Config
	rng *rand.Rand
	log *Log
	obs func(kind string)
}

// NewInjector builds an injector from cfg.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		log: NewLog(cfg.MaxLogEvents),
	}, nil
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Log returns the injector's event log; recovery code appends its own
// actions here so faults and responses interleave in one timeline.
func (in *Injector) Log() *Log { return in.log }

// hit draws one Bernoulli sample at probability p. A probability of zero
// (or less) returns false without consuming the stream, so disabled
// faults cannot perturb the sequence of enabled ones.
func (in *Injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	return in.rng.Float64() < p
}

// SetObserver installs a callback fired once per injected fault with the
// event kind — the hook the telemetry layer uses to count injected (as
// opposed to observed) faults. The callback runs on the injection path,
// so it must be cheap and must not call back into the injector.
func (in *Injector) SetObserver(fn func(kind string)) { in.obs = fn }

// record appends a fault event at simulated time t.
func (in *Injector) record(t float64, kind, target, detail string) {
	if in.obs != nil {
		in.obs(kind)
	}
	in.log.Append(Event{T: t, Kind: kind, Target: target, Detail: detail})
}

// droppedOut reports whether simulated time t falls in the configured
// whole-server dropout window.
func (in *Injector) droppedOut(t float64) bool {
	return in.cfg.DropoutForS > 0 &&
		t >= in.cfg.DropoutAtS && t < in.cfg.DropoutAtS+in.cfg.DropoutForS
}
