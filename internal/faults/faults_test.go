package faults

import (
	"errors"
	"fmt"
	"testing"

	"powerstruggle/internal/esd"
	"powerstruggle/internal/heartbeat"
	"powerstruggle/internal/simhw"
)

func TestConfigValidateRejectsBadRates(t *testing.T) {
	cases := []Config{
		{KnobWriteFailP: -0.1},
		{StuckDVFSP: 1.5},
		{BeatDropP: 2},
		{DropoutForS: -1},
		{DropoutAtS: -1, DropoutForS: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
	if err := (Config{KnobWriteFailP: 0.5, DropoutAtS: 3, DropoutForS: 2}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if (Config{Seed: 42}).Enabled() {
		t.Fatal("seed alone reports enabled")
	}
	for i, c := range []Config{
		{KnobWriteFailP: 0.1}, {StuckDVFSP: 0.1}, {MemDelayP: 0.1},
		{EnergyStaleP: 0.1}, {BeatDropP: 0.1}, {SoCMisreadP: 0.1},
		{DropoutForS: 1},
	} {
		if !c.Enabled() {
			t.Errorf("case %d: %+v reports disabled", i, c)
		}
	}
}

// A zero probability must not consume the random stream: otherwise
// disabling one fault would reshuffle every other fault's draws.
func TestZeroProbabilityDrawsNothing(t *testing.T) {
	a, err := NewInjector(Config{Seed: 11, KnobWriteFailP: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(Config{Seed: 11, KnobWriteFailP: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		// a interleaves disabled draws; b does not.
		a.hit(0)
		a.hit(-1)
		if a.hit(0.5) != b.hit(0.5) {
			t.Fatalf("draw %d diverged after zero-probability hits", i)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	seq := func(seed int64) []bool {
		in, err := NewInjector(Config{Seed: seed, KnobWriteFailP: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.hit(0.3)
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestLogRingBounding(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{T: float64(i), Kind: "k"})
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := float64(6 + i); ev.T != want {
			t.Fatalf("event %d has T=%g, want %g (oldest-first order)", i, ev.T, want)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("total %d, want 10", l.Total())
	}
	if l.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", l.Dropped())
	}
	if l.Count("k") != 10 {
		t.Fatalf("count %d, want 10", l.Count("k"))
	}
}

func newWrappedServer(t *testing.T, cfg Config) (*Server, *simhw.Server, simhw.SlotID) {
	t.Helper()
	hw, err := simhw.NewServer(simhw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(inj, hw)
	id, err := srv.Claim(2)
	if err != nil {
		t.Fatal(err)
	}
	return srv, hw, id
}

func TestKnobWriteFailIsTransient(t *testing.T) {
	srv, _, id := newWrappedServer(t, Config{Seed: 1, KnobWriteFailP: 1})
	hw := simhw.DefaultConfig()
	err := srv.SetKnobs(id, hw.FreqMinGHz, 1, hw.MemMinWatts)
	if err == nil {
		t.Fatal("certain knob-write fault did not fail")
	}
	if !IsTransient(err) {
		t.Fatalf("injected failure %v is not transient", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("injected failure %v does not wrap ErrTransient", err)
	}
	if srv.Underlying().FreeCores() == 0 {
		t.Fatal("claim did not pass through")
	}
}

func TestStuckDVFSReportsSuccess(t *testing.T) {
	srv, _, id := newWrappedServer(t, Config{Seed: 1, StuckDVFSP: 1})
	hw := simhw.DefaultConfig()
	// The write must report success while the frequency stays put — the
	// silent failure mode the watchdog exists for.
	if err := srv.SetKnobs(id, hw.FreqMinGHz+2*hw.FreqStepGHz, 1, hw.MemMinWatts); err != nil {
		t.Fatalf("stuck write reported failure: %v", err)
	}
	st, err := srv.Slot(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.FreqGHz != hw.FreqMinGHz {
		t.Fatalf("frequency moved to %.2f despite certain stuck-DVFS fault", st.FreqGHz)
	}
}

func TestDropoutWindow(t *testing.T) {
	srv, hw, id := newWrappedServer(t, Config{Seed: 1, DropoutAtS: 1, DropoutForS: 2})
	cfg := simhw.DefaultConfig()
	if err := srv.SetKnobs(id, cfg.FreqMinGHz, 1, cfg.MemMinWatts); err != nil {
		t.Fatalf("pre-window write failed: %v", err)
	}
	hw.Step(1.5) // into the window
	err := srv.SetRunning(id, true)
	if !errors.Is(err, ErrDropout) {
		t.Fatalf("in-window write got %v, want ErrDropout", err)
	}
	if !IsTransient(err) {
		t.Fatal("dropout not classified transient")
	}
	hw.Step(2.0) // past the window
	if err := srv.SetRunning(id, true); err != nil {
		t.Fatalf("post-window write failed: %v", err)
	}
}

func TestBeatDropSilent(t *testing.T) {
	inj, err := NewInjector(Config{Seed: 1, BeatDropP: 1})
	if err != nil {
		t.Fatal(err)
	}
	mon := heartbeat.NewMonitor()
	hb := NewHeartbeats(inj, mon, nil)
	if err := hb.Register("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := hb.Beat("a", 1.0, 5); err != nil {
		t.Fatalf("dropped beat surfaced an error: %v", err)
	}
	tot, err := hb.Total("a")
	if err != nil {
		t.Fatal(err)
	}
	if tot != 0 {
		t.Fatalf("total %g after certain drop, want 0", tot)
	}
	if inj.Log().Count("beat-drop") != 1 {
		t.Fatal("drop not logged")
	}
}

func TestSoCMisreadReadsZero(t *testing.T) {
	inj, err := NewInjector(Config{Seed: 1, SoCMisreadP: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := esd.NewDevice(esd.LeadAcid(300e3), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(inj, raw, nil)
	if got := dev.SoC(); got != 0 {
		t.Fatalf("misread SoC %g, want 0", got)
	}
	if raw.SoC() <= 0 {
		t.Fatal("underlying SoC should be positive")
	}
	// Energy flow does not fault: the brownout guard sees the truth.
	if dev.AvailableJ() != raw.AvailableJ() {
		t.Fatal("AvailableJ did not pass through")
	}
}

func TestWrapperDeterminism(t *testing.T) {
	run := func() []Event {
		srv, hw, id := newWrappedServer(t, Config{Seed: 3, KnobWriteFailP: 0.3, StuckDVFSP: 0.3})
		cfg := simhw.DefaultConfig()
		for i := 0; i < 50; i++ {
			_ = srv.SetKnobs(id, cfg.FreqMinGHz+cfg.FreqStepGHz, 1, cfg.MemMinWatts)
			_ = srv.SetRunning(id, i%2 == 0)
			hw.Step(0.01)
		}
		return srv.inj.Log().Events()
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("identical seeds and operations produced different event logs")
	}
	if len(a) == 0 {
		t.Fatal("no events at 30% fault rates over 100 writes")
	}
}
