package faults

import "sync"

// Event is one injected fault or one recovery action taken in response.
// Both sides of the story share the log so an operator can line up "what
// went wrong" with "what the runtime did about it".
type Event struct {
	// T is the simulated time of the event in seconds.
	T float64 `json:"t"`
	// Kind is the event class, e.g. "knob-write-fail" or
	// "watchdog-engage". Injected faults and recovery actions use
	// disjoint kinds.
	Kind string `json:"kind"`
	// Target names the entity involved: an application, a heartbeat
	// producer, a slot — empty for server-wide events.
	Target string `json:"target,omitempty"`
	// Detail is a human-readable description.
	Detail string `json:"detail,omitempty"`
}

// DefaultMaxEvents bounds a Log when the caller does not choose a limit.
const DefaultMaxEvents = 4096

// Log is a bounded, concurrency-safe ring of fault and recovery events.
// When full it drops the oldest entries, so a long-running daemon keeps a
// recent window instead of growing without limit; per-kind counters and
// the dropped count survive the eviction.
type Log struct {
	mu      sync.Mutex
	max     int
	ring    []Event
	next    int // ring write position
	full    bool
	total   int
	dropped int
	counts  map[string]int
}

// NewLog builds a log keeping at most max events (0 means
// DefaultMaxEvents).
func NewLog(max int) *Log {
	if max <= 0 {
		max = DefaultMaxEvents
	}
	return &Log{max: max, counts: make(map[string]int)}
}

// Append records one event, evicting the oldest if the ring is full.
func (l *Log) Append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < l.max {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % l.max
		l.full = true
		l.dropped++
	}
	l.total++
	l.counts[ev.Kind]++
}

// Events returns the retained events in append order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]Event(nil), l.ring...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Total returns the lifetime event count, including evicted entries.
func (l *Log) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped returns how many events were evicted by the ring bound.
func (l *Log) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Count returns the lifetime count of one event kind.
func (l *Log) Count(kind string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[kind]
}

// Counts returns a copy of the per-kind lifetime counters.
func (l *Log) Counts() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}
