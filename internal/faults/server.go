package faults

import (
	"fmt"

	"powerstruggle/internal/simhw"
)

// Server wraps a simulated platform with injected actuator and telemetry
// faults. It presents the same method set as *simhw.Server, so consumers
// that program against a small platform interface accept either; the
// unwrapped server remains the fault-free fast path.
//
// Reads (power, slot state) pass through untouched — the watchdog must
// see the platform's true draw, exactly as a real power meter sits
// outside the faulty actuation path. Energy-counter reads can go stale,
// modeling RAPL MSR read glitches.
type Server struct {
	inj *Injector
	hw  *simhw.Server

	lastEnergyJ float64
}

// NewServer wraps hw with the injector's fault model.
func NewServer(inj *Injector, hw *simhw.Server) *Server {
	return &Server{inj: inj, hw: hw}
}

// Underlying returns the wrapped fault-free server.
func (s *Server) Underlying() *simhw.Server { return s.hw }

// actuationFault centralizes the per-write failure draws shared by every
// actuation: the dropout window first (no stream draw — it is a time
// window, not a random event), then the transient write failure.
func (s *Server) actuationFault(target, what string) error {
	t := s.hw.Now()
	if s.inj.droppedOut(t) {
		s.inj.record(t, "server-dropout", target, what+" refused: server dropped out")
		return fmt.Errorf("%s: %w", what, ErrDropout)
	}
	if s.inj.hit(s.inj.cfg.KnobWriteFailP) {
		s.inj.record(t, "knob-write-fail", target, what+" failed transiently")
		return fmt.Errorf("%s: %w", what, ErrTransient)
	}
	return nil
}

// Claim passes through: placement is a scheduler operation, not a
// hardware actuation.
func (s *Server) Claim(cores int) (simhw.SlotID, error) { return s.hw.Claim(cores) }

// Release passes through.
func (s *Server) Release(id simhw.SlotID) error { return s.hw.Release(id) }

// SetKnobs applies an (f, n, m) actuation, possibly failing transiently,
// sticking the DVFS transition at the previous frequency, or applying
// the previous DRAM limit (delayed RAPL write). Stuck and delayed writes
// report success — the dangerous case the cap-breach watchdog exists
// for.
func (s *Server) SetKnobs(id simhw.SlotID, freqGHz float64, cores int, memWatts float64) error {
	target := fmt.Sprintf("slot-%d", id)
	if err := s.actuationFault(target, "knob write"); err != nil {
		return err
	}
	prev, prevErr := s.hw.Slot(id)
	if prevErr == nil {
		if s.inj.hit(s.inj.cfg.StuckDVFSP) {
			if prev.FreqGHz != freqGHz {
				s.inj.record(s.hw.Now(), "stuck-dvfs", target,
					fmt.Sprintf("frequency stuck at %.2f GHz (wanted %.2f)", prev.FreqGHz, freqGHz))
			}
			freqGHz = prev.FreqGHz
		}
		if s.inj.hit(s.inj.cfg.MemDelayP) {
			if prev.MemWatts != memWatts {
				s.inj.record(s.hw.Now(), "mem-limit-delay", target,
					fmt.Sprintf("DRAM limit held at %.1f W (wanted %.1f)", prev.MemWatts, memWatts))
			}
			memWatts = prev.MemWatts
		}
	}
	return s.hw.SetKnobs(id, freqGHz, cores, memWatts)
}

// SetLoad passes through: it reports what the occupant does, it is not
// an actuation the runtime issues.
func (s *Server) SetLoad(id simhw.SlotID, activity, memDrawWatts float64) error {
	return s.hw.SetLoad(id, activity, memDrawWatts)
}

// SetRunning starts or suspends a slot, possibly failing transiently. A
// failed suspend leaves the task running — the rogue-consumer case the
// watchdog must catch.
func (s *Server) SetRunning(id simhw.SlotID, running bool) error {
	what := "suspend"
	if running {
		what = "resume"
	}
	if err := s.actuationFault(fmt.Sprintf("slot-%d", id), what+" write"); err != nil {
		return err
	}
	return s.hw.SetRunning(id, running)
}

// Sleep drives the sockets into PC6, possibly failing transiently.
func (s *Server) Sleep() error {
	if err := s.actuationFault("", "sleep command"); err != nil {
		return err
	}
	return s.hw.Sleep()
}

// Sleeping passes through.
func (s *Server) Sleeping() bool { return s.hw.Sleeping() }

// Slot passes through: state readback is the verification channel the
// hardened executor uses, and real MSR reads are far more reliable than
// cross-stack writes.
func (s *Server) Slot(id simhw.SlotID) (simhw.SlotState, error) { return s.hw.Slot(id) }

// PowerWatts passes through: the watchdog's power meter sits outside the
// faulty actuation path.
func (s *Server) PowerWatts() float64 { return s.hw.PowerWatts() }

// AppPowerWatts passes through.
func (s *Server) AppPowerWatts(id simhw.SlotID) (float64, error) { return s.hw.AppPowerWatts(id) }

// Step passes through: time itself does not fault.
func (s *Server) Step(dt float64) float64 { return s.hw.Step(dt) }

// Waking passes through.
func (s *Server) Waking() bool { return s.hw.Waking() }

// Now passes through.
func (s *Server) Now() float64 { return s.hw.Now() }

// EnergyJoules reads the package energy counter, returning the previous
// reading with probability EnergyStaleP (a stale RAPL sample).
func (s *Server) EnergyJoules() float64 {
	if s.inj.hit(s.inj.cfg.EnergyStaleP) {
		s.inj.record(s.hw.Now(), "stale-energy", "",
			fmt.Sprintf("energy read returned stale %.1f J", s.lastEnergyJ))
		return s.lastEnergyJ
	}
	s.lastEnergyJ = s.hw.EnergyJoules()
	return s.lastEnergyJ
}

// FreeCores passes through.
func (s *Server) FreeCores() int { return s.hw.FreeCores() }

// FreeChannels passes through.
func (s *Server) FreeChannels() int { return s.hw.FreeChannels() }
