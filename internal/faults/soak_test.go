package faults_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"powerstruggle/internal/accountant"
	"powerstruggle/internal/coordinator"
	"powerstruggle/internal/faults"
	"powerstruggle/internal/policy"
	"powerstruggle/internal/simhw"
	"powerstruggle/internal/telemetry"
	"powerstruggle/internal/workload"
)

const soakK = 5 // coordinator.DefaultWatchdogK

// soakConfig is the reference fault mix for the robustness soak: well
// past the acceptance floor of 10% knob-write failures and 5% heartbeat
// loss, plus silently-sticking DVFS and delayed memory limits.
func soakConfig() *faults.Config {
	return &faults.Config{
		Seed:           7,
		KnobWriteFailP: 0.15,
		StuckDVFSP:     0.20,
		MemDelayP:      0.10,
		BeatDropP:      0.08,
	}
}

// runSoak drives a full accountant mediation loop — three staggered
// tenants, four cap changes — under the given fault config and returns
// everything observable about the run.
func runSoak(t *testing.T, fc *faults.Config, seconds float64) (*accountant.Sim, []byte) {
	return runSoakWith(t, fc, nil, seconds)
}

// runSoakWith is runSoak with a telemetry hub attached (nil for the
// bare run).
func runSoakWith(t *testing.T, fc *faults.Config, hub *telemetry.Hub, seconds float64) (*accountant.Sim, []byte) {
	t.Helper()
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := accountant.NewSim(accountant.Config{
		HW: hw, Policy: policy.AppResAware, Library: lib,
		InitialCapW:    100,
		ReallocSeconds: 0.8,
		SampleEvery:    0.25,
		Coord:          coordinator.Config{Faults: fc, Telemetry: hub},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddArrival(0, lib.MustApp("STREAM"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddArrival(1, lib.MustApp("kmeans"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.AddArrival(2, lib.MustApp("ferret"), 0); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ at, w float64 }{
		{20, 85}, {45, 78}, {70, 95}, {95, 82},
	} {
		if err := sim.AddCapChange(c.at, c.w); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.Run(seconds); err != nil {
		t.Fatalf("soak run failed: %v", err)
	}
	// Serialize every observable output so callers can compare runs
	// byte-for-byte.
	blob, err := json.Marshal(struct {
		Samples []accountant.AppSample
		Events  []accountant.Event
		Faults  []faults.Event
	}{sim.Samples(), sim.Events(), sim.Executor().FaultEvents()})
	if err != nil {
		t.Fatal(err)
	}
	return sim, blob
}

// TestFaultSoak is the CI soak gate: a long mediated run under heavy
// injected faults must not panic, must keep injecting (the harness is
// live), and must never let the draw sit over the cap for more than K
// consecutive control intervals — the watchdog's contract.
func TestFaultSoak(t *testing.T) {
	sim, _ := runSoak(t, soakConfig(), 120)
	ex := sim.Executor()

	log := ex.FaultLog()
	if log == nil || log.Total() == 0 {
		t.Fatal("soak ran without a single injected fault")
	}
	for _, kind := range []string{"knob-write-fail", "stuck-dvfs", "beat-drop"} {
		if log.Count(kind) == 0 {
			t.Errorf("no %q faults over a 120 s soak", kind)
		}
	}
	if got := ex.MaxBreachRun(); got > soakK {
		t.Fatalf("draw stayed over cap for %d consecutive intervals; watchdog K is %d", got, soakK)
	}
	if ex.CapBreachSteps() == 0 {
		t.Error("soak never breached the cap — scenario too gentle to exercise the watchdog")
	}
	if ex.WatchdogEngages() == 0 {
		t.Error("watchdog never engaged despite sustained faults and cap cuts")
	}
}

// Two soaks with the same seed must agree byte-for-byte on every sample,
// accountant event, and fault event.
func TestFaultSoakDeterministic(t *testing.T) {
	_, a := runSoak(t, soakConfig(), 40)
	_, b := runSoak(t, soakConfig(), 40)
	if string(a) != string(b) {
		t.Fatal("identical seeds produced different soak outputs")
	}
}

// With every fault rate at zero the hardened path must not exist: the
// run's outputs are bit-identical to a run with no fault config at all.
func TestZeroFaultRatesBitIdentical(t *testing.T) {
	_, plain := runSoak(t, nil, 40)
	_, zero := runSoak(t, &faults.Config{Seed: 7}, 40)
	if string(plain) != string(zero) {
		t.Fatal("zero-rate fault config perturbed the simulation")
	}
}

// TestFaultSoakTelemetry re-runs the CI soak with the full telemetry
// stack attached (the name keeps it inside the CI gate's -run
// TestFaultSoak pattern). It asserts three things: instrumentation does
// not change a single byte of the run's outputs, the metrics agree with
// the simulation's own books, and both exporters produce parseable
// output after a long faulted run.
func TestFaultSoakTelemetry(t *testing.T) {
	_, bare := runSoak(t, soakConfig(), 60)
	hub := telemetry.New(0)
	sim, instrumented := runSoakWith(t, soakConfig(), hub, 60)

	if !bytes.Equal(bare, instrumented) {
		t.Fatal("attaching telemetry changed the soak's observable outputs")
	}

	reg := hub.Registry()
	if reg.Counter("ps_coordinator_intervals_total", "").Value() == 0 {
		t.Fatal("no control intervals counted over a 60 s soak")
	}
	// Every accountant event was mirrored: counter total == log total
	// (the bounded log may have evicted, so count via len + dropped).
	var mirrored uint64
	for _, k := range []accountant.EventKind{
		accountant.EvCapChange, accountant.EvArrival, accountant.EvDeparture,
		accountant.EvPhaseChange, accountant.EvSLODegraded,
		accountant.EvHeartbeatLoss, accountant.EvHeartbeatRecovered,
	} {
		mirrored += reg.CounterVec("ps_accountant_events_total", "", "kind").With(k.String()).Value()
	}
	if want := uint64(len(sim.Events()) + sim.EventsDropped()); mirrored != want {
		t.Fatalf("event metrics %d != accountant log total %d", mirrored, want)
	}
	if reg.CounterVec("ps_faults_injected_total", "", "kind").With("knob-write-fail").Value() == 0 {
		t.Fatal("injected-fault counter flat under a 15% knob-failure rate")
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom.Bytes(), []byte("ps_accountant_replans_total")) {
		t.Fatal("metrics page lacks the accountant series")
	}
	var trace bytes.Buffer
	if err := hub.Tracer().WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &parsed); err != nil {
		t.Fatalf("soak trace does not parse: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("soak trace is empty")
	}
}

// Total heartbeat loss must flip the accountant into degraded fair-share
// mode, and the event log must say so.
func TestHeartbeatLossDegrades(t *testing.T) {
	hw := simhw.DefaultConfig()
	lib, err := workload.NewLibrary(hw)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := accountant.NewSim(accountant.Config{
		HW: hw, Policy: policy.AppResAware, Library: lib,
		InitialCapW:     100,
		ReallocSeconds:  0.5,
		HeartbeatStaleS: 3,
		Coord:           coordinator.Config{Faults: &faults.Config{Seed: 1, BeatDropP: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddArrival(0, lib.MustApp("STREAM"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(10); err != nil {
		t.Fatal(err)
	}
	if !sim.Degraded() {
		t.Fatal("accountant not degraded after total heartbeat loss")
	}
	var lost bool
	for _, e := range sim.Events() {
		if e.Kind == accountant.EvHeartbeatLoss {
			lost = true
		}
	}
	if !lost {
		t.Fatal("no heartbeat-loss event logged")
	}
}
