package faults

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrNetDrop marks an RPC the network injector swallowed: either the
// request never reached the server or the response never came back.
// The caller cannot tell which — exactly the ambiguity that makes
// at-most-once budget assignment unsafe and motivates the control
// plane's lease design.
var ErrNetDrop = fmt.Errorf("faults: injected network drop: %w", ErrTransient)

// NetConfig sets the injected network fault rates. The zero value
// injects nothing.
type NetConfig struct {
	// Seed drives the injector's random stream.
	Seed int64
	// DropReqP is the probability one request is lost before reaching
	// the server: the server never sees it, the caller gets a
	// transport error.
	DropReqP float64
	// DropRespP is the probability the response is lost after the
	// server processed the request — the nasty half of RPC ambiguity:
	// the effect landed, the caller sees a failure and will retry.
	DropRespP float64
	// DelayP is the probability one RPC is delayed by a uniform draw
	// in (0, DelayMax] before being forwarded.
	DelayP float64
	// DelayMax bounds injected delays (default 50ms). Delays larger
	// than the coordinator's per-RPC timeout surface as failures.
	DelayMax time.Duration
	// DupP is the probability one request is delivered twice — the
	// server processes it both times; the caller sees the second
	// response. Idempotent handlers (sequence-number dedup) must make
	// this harmless.
	DupP float64
	// MaxLogEvents bounds the injector's event log (0 means
	// DefaultMaxEvents).
	MaxLogEvents int
}

// Validate reports whether the configuration is usable.
func (c NetConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropReqP", c.DropReqP},
		{"DropRespP", c.DropRespP},
		{"DelayP", c.DelayP},
		{"DupP", c.DupP},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s = %g outside [0, 1]", p.name, p.v)
		}
	}
	if c.DelayMax < 0 {
		return fmt.Errorf("faults: DelayMax = %v is negative", c.DelayMax)
	}
	return nil
}

// Enabled reports whether any network fault can fire.
func (c NetConfig) Enabled() bool {
	return c.DropReqP > 0 || c.DropRespP > 0 || c.DelayP > 0 || c.DupP > 0
}

func (c NetConfig) delayMax() time.Duration {
	if c.DelayMax > 0 {
		return c.DelayMax
	}
	return 50 * time.Millisecond
}

// NetCounts tallies injected network faults.
type NetCounts struct {
	ReqDrops   int
	RespDrops  int
	Delays     int
	Duplicates int
	Blackholed int
}

// NetInjector is an http.RoundTripper that drops, delays, and
// duplicates RPCs with configured probabilities, plus deterministic
// per-host blackholes for scripted outages (the lease-expiry parity
// harness downs one agent for an exact window instead of rolling dice).
//
// The random stream is seeded, but concurrent fan-out consumes it in
// scheduler order, so a faulty run is NOT bit-reproducible — soak tests
// assert invariants (the cap is never breached), not exact traces.
type NetInjector struct {
	cfg  NetConfig
	base http.RoundTripper
	log  *Log

	mu     sync.Mutex
	rng    *rand.Rand
	down   map[string]bool
	counts NetCounts
}

// NewNetInjector wraps base (nil: http.DefaultTransport) with injected
// network faults.
func NewNetInjector(cfg NetConfig, base http.RoundTripper) (*NetInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &NetInjector{
		cfg:  cfg,
		base: base,
		log:  NewLog(cfg.MaxLogEvents),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		down: make(map[string]bool),
	}, nil
}

// Log returns the injector's event log.
func (n *NetInjector) Log() *Log { return n.log }

// Counts returns the fault tally so far.
func (n *NetInjector) Counts() NetCounts {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counts
}

// Heal disables every probabilistic fault from now on (deterministic
// blackholes persist until lifted with SetDown) — soak tests use it to
// verify the control plane converges once the network recovers.
func (n *NetInjector) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DropReqP, n.cfg.DropRespP, n.cfg.DelayP, n.cfg.DupP = 0, 0, 0, 0
}

// SetDown blackholes (or restores) every RPC to the given host:port.
// Unlike the probabilistic faults this is deterministic, so a test can
// down exactly one agent for exactly one outage window.
func (n *NetInjector) SetDown(hostport string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[hostport] = true
	} else {
		delete(n.down, hostport)
	}
}

// draw rolls the injector's dice for one RPC under the mutex.
func (n *NetInjector) draw(host string) (blackholed, dropReq, dropResp, dup bool, delay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[host] {
		n.counts.Blackholed++
		return true, false, false, false, 0
	}
	if n.cfg.DropReqP > 0 && n.rng.Float64() < n.cfg.DropReqP {
		n.counts.ReqDrops++
		dropReq = true
	}
	if n.cfg.DropRespP > 0 && n.rng.Float64() < n.cfg.DropRespP {
		n.counts.RespDrops++
		dropResp = true
	}
	if n.cfg.DupP > 0 && n.rng.Float64() < n.cfg.DupP {
		n.counts.Duplicates++
		dup = true
	}
	if n.cfg.DelayP > 0 && n.rng.Float64() < n.cfg.DelayP {
		n.counts.Delays++
		delay = time.Duration(n.rng.Float64() * float64(n.cfg.delayMax()))
	}
	return
}

// RoundTrip applies the injected faults around the base transport.
func (n *NetInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	blackholed, dropReq, dropResp, dup, delay := n.draw(req.URL.Host)
	if blackholed {
		n.log.Append(Event{Kind: "net-blackhole", Target: req.URL.Host, Detail: req.URL.Path})
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Host, ErrNetDrop)
	}
	if dropReq {
		n.log.Append(Event{Kind: "net-drop-request", Target: req.URL.Host, Detail: req.URL.Path})
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL.Host, ErrNetDrop)
	}
	if delay > 0 {
		n.log.Append(Event{Kind: "net-delay", Target: req.URL.Host,
			Detail: fmt.Sprintf("%s +%v", req.URL.Path, delay)})
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	// Duplication needs a replayable body: buffer it once, deliver the
	// request twice, and hand the caller the second response — the
	// first effect already landed server-side.
	var payload []byte
	if req.Body != nil {
		var err error
		payload, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	fresh := func() *http.Request {
		r := req.Clone(req.Context())
		if payload != nil {
			r.Body = io.NopCloser(bytes.NewReader(payload))
			r.ContentLength = int64(len(payload))
		}
		return r
	}
	if dup {
		n.log.Append(Event{Kind: "net-duplicate", Target: req.URL.Host, Detail: req.URL.Path})
		if resp, err := n.base.RoundTrip(fresh()); err == nil {
			// Drain so the connection can be reused; the caller only
			// ever sees the second delivery's response.
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := n.base.RoundTrip(fresh())
	if err != nil {
		return nil, err
	}
	if dropResp {
		n.log.Append(Event{Kind: "net-drop-response", Target: req.URL.Host, Detail: req.URL.Path})
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%s %s: response lost: %w", req.Method, req.URL.Host, ErrNetDrop)
	}
	return resp, nil
}
