package simhw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesTableI(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if got := c.TotalCores(); got != 12 {
		t.Errorf("TotalCores = %d, want 12", got)
	}
	if got := c.FreqSteps(); got != 9 {
		t.Errorf("FreqSteps = %d, want 9", got)
	}
	if c.PIdleWatts != 50 || c.PCmWatts != 20 {
		t.Errorf("P_idle/P_cm = %g/%g, want 50/20", c.PIdleWatts, c.PCmWatts)
	}
	if got := c.MaxDynamicWatts(); math.Abs(got-60) > 0.5 {
		t.Errorf("MaxDynamicWatts = %g, want ~60", got)
	}
	if got := c.MaxServerWatts(); math.Abs(got-130) > 0.5 {
		t.Errorf("MaxServerWatts = %g, want ~130", got)
	}
}

func TestConfigValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"sockets", func(c *Config) { c.Sockets = 0 }},
		{"cores", func(c *Config) { c.CoresPerSocket = -1 }},
		{"freq-range", func(c *Config) { c.FreqMaxGHz = c.FreqMinGHz - 0.1 }},
		{"freq-step", func(c *Config) { c.FreqStepGHz = 0 }},
		{"idle", func(c *Config) { c.PIdleWatts = -1 }},
		{"core-dyn", func(c *Config) { c.CoreDynMaxWatts = 0 }},
		{"alpha", func(c *Config) { c.DVFSAlpha = 0 }},
		{"channels", func(c *Config) { c.MemChannels = 0 }},
		{"mem-range", func(c *Config) { c.MemMaxWatts = c.MemMinWatts - 1 }},
		{"mem-step", func(c *Config) { c.MemStepWatts = 0 }},
		{"mem-peak", func(c *Config) { c.MemPeakGBs = 0 }},
		{"mem-exp", func(c *Config) { c.MemBWExp = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("Validate accepted bad %s", tc.name)
			}
		})
	}
}

func TestFreqLadder(t *testing.T) {
	c := DefaultConfig()
	ladder := c.FreqLadder()
	if len(ladder) != c.FreqSteps() {
		t.Fatalf("ladder has %d steps, want %d", len(ladder), c.FreqSteps())
	}
	if ladder[0] != c.FreqMinGHz || ladder[len(ladder)-1] != c.FreqMaxGHz {
		t.Errorf("ladder endpoints [%g, %g], want [%g, %g]",
			ladder[0], ladder[len(ladder)-1], c.FreqMinGHz, c.FreqMaxGHz)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Errorf("ladder not increasing at %d: %g then %g", i, ladder[i-1], ladder[i])
		}
	}
}

func TestClampFreqSnapsDown(t *testing.T) {
	c := DefaultConfig()
	cases := []struct{ in, want float64 }{
		{0.5, 1.2},
		{1.2, 1.2},
		{1.25, 1.2},
		{1.79, 1.7},
		{2.0, 2.0},
		{3.0, 2.0},
	}
	for _, tc := range cases {
		if got := c.ClampFreq(tc.in); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("ClampFreq(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

func TestMemStepsAndClamp(t *testing.T) {
	c := DefaultConfig()
	steps := c.MemSteps()
	if len(steps) != 8 {
		t.Fatalf("MemSteps has %d entries, want 8 (3..10 W)", len(steps))
	}
	if steps[0] != 3 || steps[7] != 10 {
		t.Errorf("MemSteps endpoints [%g, %g], want [3, 10]", steps[0], steps[7])
	}
	if got := c.ClampMem(5.7); got != 5 {
		t.Errorf("ClampMem(5.7) = %g, want 5", got)
	}
	if got := c.ClampMem(0); got != 3 {
		t.Errorf("ClampMem(0) = %g, want 3", got)
	}
	if got := c.ClampMem(99); got != 10 {
		t.Errorf("ClampMem(99) = %g, want 10", got)
	}
}

func TestCoreDynWattsMonotoneInFreq(t *testing.T) {
	c := DefaultConfig()
	prev := -1.0
	for _, f := range c.FreqLadder() {
		w := c.CoreDynWatts(f)
		if w <= prev {
			t.Fatalf("CoreDynWatts not increasing at %g GHz: %g then %g", f, prev, w)
		}
		prev = w
	}
	if got := c.CoreDynWatts(0); got != 0 {
		t.Errorf("CoreDynWatts(0) = %g, want 0", got)
	}
	if got := c.CoreDynWatts(c.FreqMaxGHz); math.Abs(got-c.CoreDynMaxWatts) > 1e-9 {
		t.Errorf("CoreDynWatts(fmax) = %g, want %g", got, c.CoreDynMaxWatts)
	}
}

func TestCoreWattsClampsActivity(t *testing.T) {
	c := DefaultConfig()
	lo := c.CoreWatts(2.0, -1)
	if math.Abs(lo-c.CoreStaticWatts) > 1e-9 {
		t.Errorf("CoreWatts with negative activity = %g, want static %g", lo, c.CoreStaticWatts)
	}
	hi := c.CoreWatts(2.0, 2)
	want := c.CoreStaticWatts + c.CoreDynMaxWatts
	if math.Abs(hi-want) > 1e-9 {
		t.Errorf("CoreWatts with activity 2 = %g, want clamped %g", hi, want)
	}
}

func TestMemBandwidthMonotone(t *testing.T) {
	c := DefaultConfig()
	prev := -1.0
	for _, m := range c.MemSteps() {
		bw := c.MemBandwidthGBs(m)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing at %g W: %g then %g", m, prev, bw)
		}
		prev = bw
	}
	if got := c.MemBandwidthGBs(c.MemMaxWatts); math.Abs(got-c.MemPeakGBs) > 1e-9 {
		t.Errorf("bandwidth at max limit = %g, want peak %g", got, c.MemPeakGBs)
	}
}

func TestServerPowerWattsComposition(t *testing.T) {
	c := DefaultConfig()
	if got := c.ServerPowerWatts(nil); got != c.PIdleWatts {
		t.Errorf("idle server draws %g, want %g", got, c.PIdleWatts)
	}
	if got := c.ServerPowerWatts([]float64{0, 0}); got != c.PIdleWatts {
		t.Errorf("server with suspended apps draws %g, want %g", got, c.PIdleWatts)
	}
	// The paper's example: two 20 W applications -> 110 W.
	if got := c.ServerPowerWatts([]float64{20, 20}); got != 110 {
		t.Errorf("two 20 W applications draw %g, want 110", got)
	}
	// P_cm is paid once, not per application.
	one := c.ServerPowerWatts([]float64{20})
	two := c.ServerPowerWatts([]float64{20, 20})
	if math.Abs((two-one)-20) > 1e-9 {
		t.Errorf("adding a second 20 W application added %g W, want exactly 20 (P_cm amortized)", two-one)
	}
}

func TestBudgetsAndHeadroom(t *testing.T) {
	c := DefaultConfig()
	if got := c.DynamicBudget(100); got != 30 {
		t.Errorf("DynamicBudget(100) = %g, want 30", got)
	}
	if got := c.DynamicBudget(60); got != 0 {
		t.Errorf("DynamicBudget(60) = %g, want 0 (floored)", got)
	}
	if got := c.ChargeHeadroom(70); got != 20 {
		t.Errorf("ChargeHeadroom(70) = %g, want 20", got)
	}
	if got := c.ChargeHeadroom(40); got != 0 {
		t.Errorf("ChargeHeadroom(40) = %g, want 0 (floored)", got)
	}
}

func TestQuickCoreWattsMonotone(t *testing.T) {
	c := DefaultConfig()
	prop := func(fa, fb, act uint8) bool {
		f1 := c.FreqMinGHz + float64(fa%9)*c.FreqStepGHz
		f2 := c.FreqMinGHz + float64(fb%9)*c.FreqStepGHz
		a := float64(act%101) / 100
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		return c.CoreWatts(f1, a) <= c.CoreWatts(f2, a)+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickServerPowerLowerBound(t *testing.T) {
	c := DefaultConfig()
	prop := func(ws []float64) bool {
		for i := range ws {
			ws[i] = math.Abs(ws[i])
			if math.IsInf(ws[i], 0) || math.IsNaN(ws[i]) {
				ws[i] = 1
			}
		}
		return c.ServerPowerWatts(ws) >= c.PIdleWatts
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
