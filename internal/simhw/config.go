// Package simhw models the server hardware substrate the paper's runtime
// manages: a dual-socket machine with per-core DVFS, core power gating,
// socket deep-sleep (PC6), per-channel DRAM power limiting, and the
// three-component power decomposition the paper builds its arithmetic on —
// a constant idle floor P_idle, a chip-maintenance lump P_cm that is paid
// once whenever any core is awake, and the dynamic power actually spent
// executing applications.
//
// The simulator exposes the same observation and actuation surface the
// paper's prototype had on its Xeon-2620 (RAPL-style energy counters,
// frequency/core/DRAM knobs, socket sleep), so every policy in this
// repository runs unmodified against either this model or, for the
// read-only parts, a real /sys/class/powercap tree (see internal/rapl).
package simhw

import "fmt"

// Config describes a server platform. The zero value is not useful; start
// from DefaultConfig (the paper's Table I) and adjust.
type Config struct {
	// Sockets is the number of CPU packages. Table I: 2 NUMA nodes.
	Sockets int
	// CoresPerSocket is the number of physical cores per package.
	// Table I: 12 cores total on 2 sockets.
	CoresPerSocket int

	// FreqMinGHz and FreqMaxGHz bound the per-core DVFS ladder, and
	// FreqStepGHz is its granularity. Table I: 1.2-2.0 GHz in 9 steps.
	FreqMinGHz  float64
	FreqMaxGHz  float64
	FreqStepGHz float64

	// PIdleWatts is the floor the server draws regardless of load:
	// LLC leakage, DRAM self-refresh, fans, disks. Table I: 50 W.
	PIdleWatts float64
	// PCmWatts is the chip-maintenance power: uncore components (LLC,
	// ring, memory controller, QPI) that switch on with the first awake
	// core and are paid once no matter how many applications run.
	// Table I: 20 W. This lump is what makes server power non-convex.
	PCmWatts float64

	// CoreStaticWatts is drawn by each un-gated core (and its private
	// caches) independent of activity; core consolidation (the n knob)
	// exists to shed it.
	CoreStaticWatts float64
	// CoreDynMaxWatts is the switching power of one fully-active core at
	// FreqMaxGHz. Dynamic power scales as (f/fmax)^DVFSAlpha, the usual
	// f*V(f)^2 fit.
	CoreDynMaxWatts float64
	// DVFSAlpha is the exponent of the frequency-to-power fit.
	DVFSAlpha float64

	// MemChannels is the number of independently-capped DRAM domains
	// (one controller + DIMM per socket on the paper platform).
	MemChannels int
	// ChannelSharing is how many co-located applications may share one
	// DRAM channel (default 1: the paper's placement gives each
	// application its own controller). Raising it admits deeper
	// co-location; sharers split the channel bandwidth, which callers
	// model by scaling the applications' per-beat traffic.
	ChannelSharing int
	// MemMinWatts and MemMaxWatts bound each channel's DRAM RAPL limit,
	// settable in MemStepWatts units. Paper: 3-10 W in 1 W steps.
	MemMinWatts  float64
	MemMaxWatts  float64
	MemStepWatts float64
	// MemPeakGBs is one channel's bandwidth at MemMaxWatts. A channel
	// capped at m watts delivers MemPeakGBs*(m/MemMaxWatts)^MemBWExp:
	// throttling DRAM power costs bandwidth sub-linearly.
	MemPeakGBs float64
	MemBWExp   float64

	// PC6WakeSeconds is the latency to leave socket deep sleep; the
	// paper cites wake-ups in the hundreds of microseconds.
	PC6WakeSeconds float64
}

// DefaultConfig returns the paper's Table I platform: a dual-socket
// Xeon-2620 with 12 cores at 1.2-2.0 GHz (9 steps), 50 W idle, 20 W
// chip-maintenance, and up to 60 W of dynamic power split between cores
// and two DRAM channels capped at 3-10 W each.
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 6,
		FreqMinGHz:     1.2,
		FreqMaxGHz:     2.0,
		FreqStepGHz:    0.1,
		PIdleWatts:     50,
		PCmWatts:       20,
		// 12 cores * 3.33 W + 2 channels * 10 W = 60 W of P_dynamic.
		CoreStaticWatts: 0.9,
		CoreDynMaxWatts: 2.43,
		DVFSAlpha:       2.2,
		MemChannels:     2,
		MemMinWatts:     3,
		MemMaxWatts:     10,
		MemStepWatts:    1,
		MemPeakGBs:      12.8, // one DDR3-1600 channel
		MemBWExp:        0.8,
		PC6WakeSeconds:  300e-6,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Sockets <= 0:
		return fmt.Errorf("simhw: Sockets must be positive, got %d", c.Sockets)
	case c.CoresPerSocket <= 0:
		return fmt.Errorf("simhw: CoresPerSocket must be positive, got %d", c.CoresPerSocket)
	case c.FreqMinGHz <= 0 || c.FreqMaxGHz < c.FreqMinGHz:
		return fmt.Errorf("simhw: frequency range [%g, %g] GHz is invalid", c.FreqMinGHz, c.FreqMaxGHz)
	case c.FreqStepGHz <= 0:
		return fmt.Errorf("simhw: FreqStepGHz must be positive, got %g", c.FreqStepGHz)
	case c.PIdleWatts < 0 || c.PCmWatts < 0:
		return fmt.Errorf("simhw: idle/chip-maintenance power must be non-negative (%g, %g)", c.PIdleWatts, c.PCmWatts)
	case c.CoreStaticWatts < 0 || c.CoreDynMaxWatts <= 0:
		return fmt.Errorf("simhw: core power constants invalid (static %g, dyn %g)", c.CoreStaticWatts, c.CoreDynMaxWatts)
	case c.DVFSAlpha <= 0:
		return fmt.Errorf("simhw: DVFSAlpha must be positive, got %g", c.DVFSAlpha)
	case c.MemChannels <= 0:
		return fmt.Errorf("simhw: MemChannels must be positive, got %d", c.MemChannels)
	case c.MemMinWatts <= 0 || c.MemMaxWatts < c.MemMinWatts:
		return fmt.Errorf("simhw: DRAM power range [%g, %g] W is invalid", c.MemMinWatts, c.MemMaxWatts)
	case c.MemStepWatts <= 0:
		return fmt.Errorf("simhw: MemStepWatts must be positive, got %g", c.MemStepWatts)
	case c.MemPeakGBs <= 0:
		return fmt.Errorf("simhw: MemPeakGBs must be positive, got %g", c.MemPeakGBs)
	case c.MemBWExp <= 0:
		return fmt.Errorf("simhw: MemBWExp must be positive, got %g", c.MemBWExp)
	}
	return nil
}

// TotalCores returns the number of physical cores on the platform.
func (c Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// FreqSteps returns the DVFS ladder size (Table I: 9).
func (c Config) FreqSteps() int {
	return int((c.FreqMaxGHz-c.FreqMinGHz)/c.FreqStepGHz+0.5) + 1
}

// FreqLadder returns the available frequencies in ascending order.
func (c Config) FreqLadder() []float64 {
	n := c.FreqSteps()
	out := make([]float64, n)
	for i := range out {
		out[i] = c.FreqMinGHz + float64(i)*c.FreqStepGHz
	}
	out[n-1] = c.FreqMaxGHz // avoid drift from repeated float addition
	return out
}

// ClampFreq snaps f onto the DVFS ladder, rounding down (a core can never
// run faster than requested).
func (c Config) ClampFreq(f float64) float64 {
	if f <= c.FreqMinGHz {
		return c.FreqMinGHz
	}
	if f >= c.FreqMaxGHz {
		return c.FreqMaxGHz
	}
	steps := int((f - c.FreqMinGHz) / c.FreqStepGHz)
	return c.FreqMinGHz + float64(steps)*c.FreqStepGHz
}

// MemSteps returns the DRAM power-limit ladder for one channel, ascending.
func (c Config) MemSteps() []float64 {
	var out []float64
	for m := c.MemMinWatts; m <= c.MemMaxWatts+1e-9; m += c.MemStepWatts {
		out = append(out, m)
	}
	return out
}

// ClampMem snaps a DRAM power limit into [MemMinWatts, MemMaxWatts] on the
// MemStepWatts grid, rounding down.
func (c Config) ClampMem(m float64) float64 {
	if m <= c.MemMinWatts {
		return c.MemMinWatts
	}
	if m >= c.MemMaxWatts {
		return c.MemMaxWatts
	}
	steps := int((m - c.MemMinWatts) / c.MemStepWatts)
	return c.MemMinWatts + float64(steps)*c.MemStepWatts
}

// MaxDynamicWatts returns the platform's maximum dynamic power: all cores
// fully active at top frequency plus all DRAM channels at their cap
// (Table I: 60 W).
func (c Config) MaxDynamicWatts() float64 {
	return float64(c.TotalCores())*(c.CoreStaticWatts+c.CoreDynMaxWatts) +
		float64(c.MemChannels)*c.MemMaxWatts
}

// MaxServerWatts returns the nameplate draw: idle + chip maintenance +
// maximum dynamic power.
func (c Config) MaxServerWatts() float64 {
	return c.PIdleWatts + c.PCmWatts + c.MaxDynamicWatts()
}
