package simhw

import (
	"math"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerRejectsInvalidConfig(t *testing.T) {
	c := DefaultConfig()
	c.Sockets = 0
	if _, err := NewServer(c); err == nil {
		t.Fatal("NewServer accepted invalid config")
	}
}

func TestClaimReleaseAccounting(t *testing.T) {
	s := newTestServer(t)
	if got := s.FreeCores(); got != 12 {
		t.Fatalf("fresh server has %d free cores, want 12", got)
	}
	a, err := s.Claim(6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Claim(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FreeCores(); got != 0 {
		t.Errorf("after two 6-core claims, %d free cores, want 0", got)
	}
	if got := s.FreeChannels(); got != 0 {
		t.Errorf("after two claims, %d free channels, want 0", got)
	}
	if _, err := s.Claim(1); err == nil {
		t.Error("third claim succeeded with no free channel")
	}
	if err := s.Release(a); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeCores(); got != 6 {
		t.Errorf("after release, %d free cores, want 6", got)
	}
	if err := s.Release(a); err == nil {
		t.Error("double release succeeded")
	}
	if slots := s.Slots(); len(slots) != 1 || slots[0] != b {
		t.Errorf("Slots = %v, want [%d]", slots, b)
	}
}

func TestClaimRejectsBadSizes(t *testing.T) {
	s := newTestServer(t)
	if _, err := s.Claim(0); err == nil {
		t.Error("claim of 0 cores succeeded")
	}
	if _, err := s.Claim(13); err == nil {
		t.Error("claim of 13 cores succeeded on a 12-core server")
	}
}

func TestSetKnobsGrowsAndShrinksCorePool(t *testing.T) {
	s := newTestServer(t)
	id, err := s.Claim(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetKnobs(id, 2.0, 6, 10); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeCores(); got != 6 {
		t.Errorf("after growing to 6 cores, %d free, want 6", got)
	}
	if err := s.SetKnobs(id, 1.5, 1, 3); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeCores(); got != 11 {
		t.Errorf("after shrinking to 1 core, %d free, want 11", got)
	}
	if err := s.SetKnobs(id, 2.0, 20, 3); err == nil {
		t.Error("growing beyond the pool succeeded")
	}
	if err := s.SetKnobs(id, 2.0, 0, 3); err == nil {
		t.Error("zero-core knob setting succeeded")
	}
	st, err := s.Slot(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cores != 1 || st.FreqGHz != 1.5 || st.MemWatts != 3 {
		t.Errorf("slot state = %+v, want 1 core at 1.5 GHz, 3 W", st)
	}
}

func TestSetLoadClamps(t *testing.T) {
	s := newTestServer(t)
	id, _ := s.Claim(2)
	if err := s.SetKnobs(id, 2.0, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLoad(id, 2.5, 100); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Slot(id)
	if st.Activity != 1 {
		t.Errorf("activity = %g, want clamped to 1", st.Activity)
	}
	if st.MemDrawWatts != st.MemWatts {
		t.Errorf("mem draw = %g, want clamped to limit %g", st.MemDrawWatts, st.MemWatts)
	}
	if err := s.SetLoad(id, -1, -5); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Slot(id)
	if st.Activity != 0 || st.MemDrawWatts != 0 {
		t.Errorf("negative load not floored: %+v", st)
	}
}

func TestPowerComposition(t *testing.T) {
	cfg := DefaultConfig()
	s := newTestServer(t)
	if got := s.PowerWatts(); got != cfg.PIdleWatts {
		t.Fatalf("empty server draws %g, want idle %g", got, cfg.PIdleWatts)
	}
	id, _ := s.Claim(6)
	if err := s.SetKnobs(id, 2.0, 6, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLoad(id, 1, 10); err != nil {
		t.Fatal(err)
	}
	// Suspended slot draws nothing beyond idle.
	if got := s.PowerWatts(); got != cfg.PIdleWatts {
		t.Errorf("suspended slot server draws %g, want %g", got, cfg.PIdleWatts)
	}
	if err := s.SetRunning(id, true); err != nil {
		t.Fatal(err)
	}
	want := cfg.PIdleWatts + cfg.PCmWatts + 6*cfg.CoreWatts(2.0, 1) + 10
	if got := s.PowerWatts(); math.Abs(got-want) > 1e-9 {
		t.Errorf("running server draws %g, want %g", got, want)
	}
	appW, err := s.AppPowerWatts(id)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(appW-(6*cfg.CoreWatts(2.0, 1)+10)) > 1e-9 {
		t.Errorf("app draws %g, want %g", appW, 6*cfg.CoreWatts(2.0, 1)+10)
	}
}

func TestStepAccumulatesEnergy(t *testing.T) {
	s := newTestServer(t)
	id, _ := s.Claim(4)
	if err := s.SetKnobs(id, 1.6, 4, 6); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLoad(id, 0.8, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRunning(id, true); err != nil {
		t.Fatal(err)
	}
	p := s.PowerWatts()
	for i := 0; i < 100; i++ {
		s.Step(0.01)
	}
	if got := s.Now(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Now = %g, want 1.0", got)
	}
	if got := s.EnergyJoules(); math.Abs(got-p) > 1e-6 {
		t.Errorf("1 s at %g W accumulated %g J", p, got)
	}
	appW, _ := s.AppPowerWatts(id)
	appE, err := s.AppEnergyJoules(id)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(appE-appW) > 1e-6 {
		t.Errorf("app energy %g J over 1 s at %g W", appE, appW)
	}
}

func TestSleepRequiresSuspension(t *testing.T) {
	s := newTestServer(t)
	id, _ := s.Claim(2)
	if err := s.SetRunning(id, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Sleep(); err == nil {
		t.Fatal("Sleep succeeded with a running slot")
	}
	if err := s.SetRunning(id, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Sleep(); err != nil {
		t.Fatal(err)
	}
	if !s.Sleeping() {
		t.Fatal("server not sleeping after Sleep")
	}
	if got := s.PowerWatts(); got != DefaultConfig().PIdleWatts {
		t.Errorf("sleeping server draws %g, want idle floor", got)
	}
	// Waking a slot exits PC6 and charges the wake latency.
	if err := s.SetRunning(id, true); err != nil {
		t.Fatal(err)
	}
	if s.Sleeping() {
		t.Error("server still sleeping after a slot started")
	}
	if !s.Waking() {
		t.Error("no wake latency pending after PC6 exit")
	}
	s.Step(0.001) // > 300 us
	if s.Waking() {
		t.Error("wake latency did not clear")
	}
}

func TestUnknownSlotErrors(t *testing.T) {
	s := newTestServer(t)
	const ghost = SlotID(99)
	if err := s.SetKnobs(ghost, 2, 1, 3); err == nil {
		t.Error("SetKnobs on unknown slot succeeded")
	}
	if err := s.SetLoad(ghost, 1, 1); err == nil {
		t.Error("SetLoad on unknown slot succeeded")
	}
	if err := s.SetRunning(ghost, true); err == nil {
		t.Error("SetRunning on unknown slot succeeded")
	}
	if _, err := s.Slot(ghost); err == nil {
		t.Error("Slot on unknown slot succeeded")
	}
	if _, err := s.AppPowerWatts(ghost); err == nil {
		t.Error("AppPowerWatts on unknown slot succeeded")
	}
	if _, err := s.AppEnergyJoules(ghost); err == nil {
		t.Error("AppEnergyJoules on unknown slot succeeded")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newTestServer(t)
	ids := make([]SlotID, 2)
	for i := range ids {
		id, err := s.Claim(3)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.SetKnobs(id, 1.5, 3, 5)
				_ = s.SetLoad(id, 0.5, 2)
				_ = s.SetRunning(id, i%2 == 0)
				_, _ = s.AppPowerWatts(id)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Step(0.001)
			_ = s.PowerWatts()
		}
	}()
	wg.Wait()
}

func TestChannelSharingAdmitsMoreSlots(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChannelSharing = 2
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four 3-core claims fit with two sharers per channel.
	for i := 0; i < 4; i++ {
		if _, err := s.Claim(3); err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
	}
	if _, err := s.Claim(1); err == nil {
		t.Error("fifth claim succeeded beyond the channel-slot budget")
	}
}
