package simhw

import "math"

// CoreDynWatts returns the switching power of one core running fully
// active at frequency f (GHz). Partially-stalled cores scale this by
// their activity factor (see workload.Profile.CPUActivity).
func (c Config) CoreDynWatts(f float64) float64 {
	if f <= 0 {
		return 0
	}
	return c.CoreDynMaxWatts * math.Pow(f/c.FreqMaxGHz, c.DVFSAlpha)
}

// CoreWatts returns the total draw of one un-gated core at frequency f
// with the given activity factor in [0, 1]: static leakage plus scaled
// switching power.
func (c Config) CoreWatts(f, activity float64) float64 {
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	return c.CoreStaticWatts + activity*c.CoreDynWatts(f)
}

// MemBandwidthGBs returns the bandwidth one DRAM channel delivers under a
// power limit of m watts. Bandwidth falls sub-linearly as the limit
// tightens (the controller throttles request scheduling, not refresh).
func (c Config) MemBandwidthGBs(m float64) float64 {
	m = c.ClampMem(m)
	return c.MemPeakGBs * math.Pow(m/c.MemMaxWatts, c.MemBWExp)
}

// AppPowerWatts returns the dynamic power an application draws when it
// runs n cores at frequency f with the given core activity factor, plus a
// DRAM channel draw of memWatts. This is the P_X term of the paper's
// constraint (2); it excludes P_idle and P_cm, which are shared.
func (c Config) AppPowerWatts(f float64, n int, memWatts, activity float64) float64 {
	if n <= 0 {
		return 0
	}
	if n > c.TotalCores() {
		n = c.TotalCores()
	}
	return float64(n)*c.CoreWatts(f, activity) + memWatts
}

// ServerPowerWatts composes total server draw from per-application dynamic
// draws: P_idle + P_cm (paid once if anything is awake) + sum of P_X. It
// is the left-hand side of the paper's constraint (2) without the ESD
// terms.
func (c Config) ServerPowerWatts(appWatts []float64) float64 {
	total := c.PIdleWatts
	anyActive := false
	for _, w := range appWatts {
		if w > 0 {
			anyActive = true
			total += w
		}
	}
	if anyActive {
		total += c.PCmWatts
	}
	return total
}

// DynamicBudget returns the power left for applications under cap watts
// when the server is awake: cap - P_idle - P_cm, floored at zero.
func (c Config) DynamicBudget(cap float64) float64 {
	b := cap - c.PIdleWatts - c.PCmWatts
	if b < 0 {
		return 0
	}
	return b
}

// ChargeHeadroom returns the power available to charge an ESD while the
// sockets are in deep sleep (P_cm and P_dynamic both zero): cap - P_idle,
// floored at zero. This is the paper's equation (3) rearranged.
func (c Config) ChargeHeadroom(cap float64) float64 {
	h := cap - c.PIdleWatts
	if h < 0 {
		return 0
	}
	return h
}
