package simhw

import (
	"fmt"
	"sort"
	"sync"
)

// SlotID identifies a placement slot (one co-located application's set of
// cores and DRAM channel) on a Server.
type SlotID int

// SlotState is the actuation state of one placement slot: the paper's
// three intra-application knobs plus a run/suspend bit (the knob the
// Coordinator's time multiplexing uses).
type SlotState struct {
	// Running is false while the slot's task is suspended (SIGSTOP in
	// the paper's prototype). A suspended slot draws no dynamic power
	// but keeps its core/channel reservation.
	Running bool
	// FreqGHz is the DVFS setting of all the slot's active cores.
	FreqGHz float64
	// Cores is the number of un-gated cores (the consolidation knob n).
	Cores int
	// MemWatts is the DRAM RAPL limit on the slot's channel (knob m).
	MemWatts float64
	// Activity is the core activity factor the occupant presents,
	// in [0, 1]; it scales switching power.
	Activity float64
	// MemDrawWatts is how much of the DRAM limit the occupant actually
	// pulls; a compute-bound task never reaches its channel cap.
	MemDrawWatts float64
}

// Server is a running instance of the simulated platform. Slots are
// claimed by applications; their knob state, together with the socket
// sleep state, fully determines instantaneous power. Advancing time
// accumulates RAPL-style energy counters.
//
// Server is safe for concurrent use.
type Server struct {
	cfg Config

	mu        sync.Mutex
	slots     map[SlotID]*SlotState
	nextSlot  SlotID
	freeCores int
	freeChans int

	now          float64 // seconds since construction
	energyJ      float64 // lifetime server energy (the package meter)
	appEnergyJ   map[SlotID]float64
	sleeping     bool    // PC6: all sockets in deep sleep
	wakePending  float64 // seconds of wake latency still to serve
	lastPowerW   float64 // draw over the most recent Step
	sleepEnergyJ float64 // energy spent while in PC6 (idle floor only)
}

// NewServer builds a Server from cfg. It panics only on programmer error
// (invalid config); use Config.Validate first for user-supplied configs.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sharing := cfg.ChannelSharing
	if sharing < 1 {
		sharing = 1
	}
	return &Server{
		cfg:        cfg,
		slots:      make(map[SlotID]*SlotState),
		freeCores:  cfg.TotalCores(),
		freeChans:  cfg.MemChannels * sharing,
		appEnergyJ: make(map[SlotID]float64),
	}, nil
}

// Config returns the platform description the server was built from.
func (s *Server) Config() Config { return s.cfg }

// Claim reserves cores cores and one DRAM channel for a new co-located
// application and returns its slot. The slot starts suspended at minimum
// knob settings. Claim fails when the direct resources are exhausted —
// the paper's premise is that direct resources suffice, so callers treat
// this as a scheduling error, not a power condition.
func (s *Server) Claim(cores int) (SlotID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cores <= 0 {
		return 0, fmt.Errorf("simhw: claim of %d cores is invalid", cores)
	}
	if cores > s.freeCores {
		return 0, fmt.Errorf("simhw: claim of %d cores exceeds %d free", cores, s.freeCores)
	}
	if s.freeChans == 0 {
		return 0, fmt.Errorf("simhw: no free DRAM channel slot")
	}
	id := s.nextSlot
	s.nextSlot++
	s.freeCores -= cores
	s.freeChans--
	s.slots[id] = &SlotState{
		Running:  false,
		FreqGHz:  s.cfg.FreqMinGHz,
		Cores:    cores,
		MemWatts: s.cfg.MemMinWatts,
		Activity: 1,
	}
	return id, nil
}

// Release returns a slot's cores and channel to the free pool.
func (s *Server) Release(id SlotID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.slots[id]
	if !ok {
		return fmt.Errorf("simhw: release of unknown slot %d", id)
	}
	s.freeCores += st.Cores
	s.freeChans++
	delete(s.slots, id)
	delete(s.appEnergyJ, id)
	return nil
}

// Slots returns the live slot IDs in ascending order.
func (s *Server) Slots() []SlotID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SlotID, 0, len(s.slots))
	for id := range s.slots {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetKnobs applies an (f, n, m) actuation to a slot, snapping each knob
// to its hardware ladder. Growing the core count draws from the free
// pool; shrinking returns cores to it.
func (s *Server) SetKnobs(id SlotID, freqGHz float64, cores int, memWatts float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.slots[id]
	if !ok {
		return fmt.Errorf("simhw: knobs for unknown slot %d", id)
	}
	if cores <= 0 {
		return fmt.Errorf("simhw: slot %d cannot run on %d cores", id, cores)
	}
	delta := cores - st.Cores
	if delta > s.freeCores {
		return fmt.Errorf("simhw: slot %d wants %d more cores, only %d free", id, delta, s.freeCores)
	}
	s.freeCores -= delta
	st.Cores = cores
	st.FreqGHz = s.cfg.ClampFreq(freqGHz)
	st.MemWatts = s.cfg.ClampMem(memWatts)
	return nil
}

// SetLoad updates the occupant-driven part of a slot's state: its core
// activity factor and actual DRAM draw (clamped to the channel limit).
func (s *Server) SetLoad(id SlotID, activity, memDrawWatts float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.slots[id]
	if !ok {
		return fmt.Errorf("simhw: load for unknown slot %d", id)
	}
	if activity < 0 {
		activity = 0
	}
	if activity > 1 {
		activity = 1
	}
	st.Activity = activity
	if memDrawWatts > st.MemWatts {
		memDrawWatts = st.MemWatts
	}
	if memDrawWatts < 0 {
		memDrawWatts = 0
	}
	st.MemDrawWatts = memDrawWatts
	return nil
}

// SetRunning starts or suspends a slot's task (the Coordinator's time
// knob). Starting a slot wakes the sockets if they were in PC6.
func (s *Server) SetRunning(id SlotID, running bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.slots[id]
	if !ok {
		return fmt.Errorf("simhw: run state for unknown slot %d", id)
	}
	st.Running = running
	if running && s.sleeping {
		s.sleeping = false
		s.wakePending = s.cfg.PC6WakeSeconds
	}
	return nil
}

// Sleep drives all sockets into PC6 deep sleep. It fails if any slot is
// still running; the coordinator suspends everything first (the paper's
// applications "coordinate to put the server to deep sleep").
func (s *Server) Sleep() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, st := range s.slots {
		if st.Running {
			return fmt.Errorf("simhw: cannot enter PC6 while slot %d runs", id)
		}
	}
	s.sleeping = true
	return nil
}

// Sleeping reports whether the sockets are in PC6.
func (s *Server) Sleeping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sleeping
}

// Slot returns a copy of a slot's current state.
func (s *Server) Slot(id SlotID) (SlotState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.slots[id]
	if !ok {
		return SlotState{}, fmt.Errorf("simhw: unknown slot %d", id)
	}
	return *st, nil
}

// slotPowerLocked computes one slot's instantaneous dynamic draw.
func (s *Server) slotPowerLocked(st *SlotState) float64 {
	if !st.Running {
		return 0
	}
	return float64(st.Cores)*s.cfg.CoreWatts(st.FreqGHz, st.Activity) + st.MemDrawWatts
}

// PowerWatts returns the server's instantaneous draw: the idle floor,
// plus P_cm and per-slot dynamic power when awake.
func (s *Server) PowerWatts() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.powerLocked()
}

func (s *Server) powerLocked() float64 {
	total := s.cfg.PIdleWatts
	if s.sleeping {
		return total
	}
	anyRunning := false
	for _, st := range s.slots {
		if st.Running {
			anyRunning = true
			total += s.slotPowerLocked(st)
		}
	}
	if anyRunning {
		total += s.cfg.PCmWatts
	}
	return total
}

// AppPowerWatts returns one slot's instantaneous dynamic draw (its P_X).
func (s *Server) AppPowerWatts(id SlotID) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.slots[id]
	if !ok {
		return 0, fmt.Errorf("simhw: unknown slot %d", id)
	}
	if s.sleeping {
		return 0, nil
	}
	return s.slotPowerLocked(st), nil
}

// Step advances simulated time by dt seconds, accumulating the package
// and per-slot energy counters and burning down any pending PC6 wake
// latency. It returns the average server power over the step.
func (s *Server) Step(dt float64) float64 {
	if dt <= 0 {
		return s.PowerWatts()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.powerLocked()
	s.now += dt
	s.energyJ += p * dt
	if s.sleeping {
		s.sleepEnergyJ += p * dt
	}
	if s.wakePending > 0 {
		s.wakePending -= dt
		if s.wakePending < 0 {
			s.wakePending = 0
		}
	}
	for id, st := range s.slots {
		s.appEnergyJ[id] += s.slotPowerLocked(st) * dt
	}
	s.lastPowerW = p
	return p
}

// Waking reports whether the server is still serving PC6 exit latency;
// slots make no progress until it clears.
func (s *Server) Waking() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wakePending > 0
}

// Now returns seconds of simulated time since construction.
func (s *Server) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// EnergyJoules returns the lifetime package energy counter, the analogue
// of RAPL's PKG energy MSR (plus the platform floor).
func (s *Server) EnergyJoules() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.energyJ
}

// AppEnergyJoules returns a slot's accumulated dynamic energy.
func (s *Server) AppEnergyJoules(id SlotID) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.appEnergyJ[id]
	if !ok {
		if _, live := s.slots[id]; !live {
			return 0, fmt.Errorf("simhw: unknown slot %d", id)
		}
	}
	return e, nil
}

// FreeCores returns the number of unclaimed cores.
func (s *Server) FreeCores() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeCores
}

// FreeChannels returns the number of unclaimed DRAM channels.
func (s *Server) FreeChannels() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.freeChans
}
