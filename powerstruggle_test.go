package powerstruggle

import (
	"testing"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestServerValidation(t *testing.T) {
	cfg := Defaults()
	cfg.Platform.Sockets = 0
	if _, err := NewServer(cfg); err == nil {
		t.Error("invalid platform accepted")
	}
	srv := newTestServer(t)
	if err := srv.SetCap(0); err == nil {
		t.Error("zero cap accepted")
	}
	if err := srv.Admit("not-a-benchmark"); err == nil {
		t.Error("unknown application accepted")
	}
	if err := srv.AdmitProfile(nil); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := srv.Run(AppResAware, 10); err == nil {
		t.Error("run without applications accepted")
	}
}

func TestQuickstartFlow(t *testing.T) {
	srv := newTestServer(t)
	if len(srv.Apps()) != 12 {
		t.Fatalf("%d available applications, want 12", len(srv.Apps()))
	}
	if err := srv.SetCap(100); err != nil {
		t.Fatal(err)
	}
	for _, a := range []string{"STREAM", "kmeans"} {
		if err := srv.Admit(a); err != nil {
			t.Fatal(err)
		}
	}
	res, err := srv.Run(AppResAware, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapViolations != 0 {
		t.Fatalf("%d cap violations", res.CapViolations)
	}
	if res.MaxGridW > 100 {
		t.Fatalf("peak grid %g over the cap", res.MaxGridW)
	}
	if res.TotalPerf <= 0 || res.TotalPerf > 2 {
		t.Fatalf("total perf %g out of range", res.TotalPerf)
	}
	if len(res.AppPerf) != 2 || len(res.AppBudgetW) != 2 {
		t.Fatalf("result shape: %v / %v", res.AppPerf, res.AppBudgetW)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no timeline samples")
	}
	if res.Mode != "space" {
		t.Errorf("mode %q at a loose cap, want space", res.Mode)
	}

	// Plan without running.
	sched, err := srv.Plan(UtilUnaware)
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalPerf <= 0 {
		t.Error("plan predicts no performance")
	}

	srv.Reset()
	if _, err := srv.Run(AppResAware, 1); err == nil {
		t.Error("run after Reset accepted")
	}
}

func TestPolicyOrderingThroughFacade(t *testing.T) {
	run := func(p Policy, capW float64) float64 {
		srv := newTestServer(t)
		if err := srv.SetCap(capW); err != nil {
			t.Fatal(err)
		}
		for _, a := range []string{"X264", "SSSP"} {
			if err := srv.Admit(a); err != nil {
				t.Fatal(err)
			}
		}
		res, err := srv.Run(p, 15)
		if err != nil {
			t.Fatal(err)
		}
		if res.CapViolations != 0 {
			t.Fatalf("%v at %g W: %d violations", p, capW, res.CapViolations)
		}
		return res.TotalPerf
	}
	if uu, ar := run(UtilUnaware, 100), run(AppResAware, 100); ar <= uu {
		t.Errorf("App+Res-Aware (%.3f) not ahead of Util-Unaware (%.3f) at 100 W", ar, uu)
	}
	if ar, es := run(AppResAware, 80), run(AppResESDAware, 80); es <= ar {
		t.Errorf("ESD awareness (%.3f) not ahead (%.3f) at 80 W", es, ar)
	}
}

func TestMixesExported(t *testing.T) {
	if len(Mixes()) != 15 {
		t.Errorf("%d mixes exported, want 15", len(Mixes()))
	}
}

func TestCustomProfileAdmission(t *testing.T) {
	srv := newTestServer(t)
	base, err := srv.Library().App("ferret")
	if err != nil {
		t.Fatal(err)
	}
	custom := *base
	custom.Name = "my-service"
	if err := srv.AdmitProfile(&custom); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetCap(90); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(AppResAware, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPerf <= 0 {
		t.Error("custom profile made no progress")
	}
}

func TestCriticalAdmissionHonorsSLO(t *testing.T) {
	srv := newTestServer(t)
	if err := srv.SetCap(100); err != nil {
		t.Fatal(err)
	}
	// kmeans is latency-critical with a 0.75 floor; STREAM best-effort.
	if err := srv.Admit("STREAM"); err != nil {
		t.Fatal(err)
	}
	if err := srv.AdmitCritical("kmeans", 2, 0.75); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(AppResAware, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.AppPerf[1]+0.02 < 0.75 {
		t.Errorf("SLO floor violated: kmeans at %.3f, floor 0.75", res.AppPerf[1])
	}
	if res.CapViolations != 0 {
		t.Errorf("%d cap violations with SLOs", res.CapViolations)
	}

	// Compare against the best-effort split: the floor must raise
	// kmeans' share.
	free := newTestServer(t)
	_ = free.SetCap(100)
	_ = free.Admit("STREAM")
	_ = free.Admit("kmeans")
	freeRes, err := free.Run(AppResAware, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.AppBudgetW[1] < freeRes.AppBudgetW[1]-0.5 {
		t.Errorf("SLO did not raise the critical share: %.1f vs %.1f W",
			res.AppBudgetW[1], freeRes.AppBudgetW[1])
	}
}

func TestCriticalAdmissionValidation(t *testing.T) {
	srv := newTestServer(t)
	if err := srv.AdmitCritical("kmeans", 0, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := srv.AdmitCritical("kmeans", 1, 1.5); err == nil {
		t.Error("floor above 1 accepted")
	}
	if err := srv.AdmitCritical("unknown", 1, 0.5); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestInfeasibleSLOSurfacesAsError(t *testing.T) {
	srv := newTestServer(t)
	if err := srv.SetCap(80); err != nil {
		t.Fatal(err)
	}
	if err := srv.AdmitCritical("STREAM", 1, 0.95); err != nil {
		t.Fatal(err)
	}
	if err := srv.AdmitCritical("kmeans", 1, 0.95); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Run(AppResAware, 5); err == nil {
		t.Error("infeasible SLOs at 80 W did not error")
	}
}
