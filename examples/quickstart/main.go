// Quickstart: co-locate a memory-bound and a compute-bound application
// on one power-capped server and compare the paper's policies.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powerstruggle"
)

func main() {
	log.SetFlags(0)

	srv, err := powerstruggle.NewServer(powerstruggle.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	// Mix-1 of the paper's Table II: STREAM (memory) + kmeans
	// (analytics). Each gets its own socket's cores and DRAM channel —
	// no direct-resource contention, only a power struggle.
	for _, app := range []string{"STREAM", "kmeans"} {
		if err := srv.Admit(app); err != nil {
			log.Fatal(err)
		}
	}
	// Cap the server at 100 W: about 10% below what the pair draws
	// uncapped, the paper's "relatively loose" scenario.
	if err := srv.SetCap(100); err != nil {
		log.Fatal(err)
	}

	fmt.Println("P_cap = 100 W, STREAM + kmeans, 30 simulated seconds:")
	policies := []powerstruggle.Policy{
		powerstruggle.UtilUnaware,
		powerstruggle.ServerResAware,
		powerstruggle.AppAware,
		powerstruggle.AppResAware,
	}
	var base float64
	for _, p := range policies {
		res, err := srv.Run(p, 30)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.TotalPerf
		}
		fmt.Printf("  %-18v total=%.3f (STREAM %.3f / kmeans %.3f, split %.1f/%.1f W) %+5.1f%%  peak %.1f W\n",
			p, res.TotalPerf, res.AppPerf[0], res.AppPerf[1],
			res.AppBudgetW[0], res.AppBudgetW[1],
			(res.TotalPerf/base-1)*100, res.MaxGridW)
		if res.CapViolations > 0 {
			log.Fatalf("policy %v violated the cap %d times", p, res.CapViolations)
		}
	}
	fmt.Println()
	fmt.Println("Treating power as a shared resource (App+Res-Aware) recovers")
	fmt.Println("throughput the utility-blind baseline leaves on the table, while")
	fmt.Println("never drawing above the cap.")
}
