// Batteryboost: under a stringent 80 W cap the server cannot run both
// applications at once — the paper's R3/R4 regime. This example shows
// the escalation: simultaneous throttling crawls, duty cycling helps,
// and coordinating the lead-acid battery in space AND time (charging
// while the sockets deep-sleep, discharging while everyone runs at full
// speed, amortizing P_cm) nearly doubles throughput.
//
// Run with:
//
//	go run ./examples/batteryboost
package main

import (
	"fmt"
	"log"

	"powerstruggle"
)

func main() {
	log.SetFlags(0)

	const capW = 80
	fmt.Printf("P_cap = %d W, X264 + SSSP (mix-14), 60 simulated seconds:\n", capW)

	run := func(p powerstruggle.Policy, batteryJ float64) *powerstruggle.Result {
		cfg := powerstruggle.Defaults()
		cfg.BatteryJ = batteryJ
		srv, err := powerstruggle.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.SetCap(capW); err != nil {
			log.Fatal(err)
		}
		for _, app := range []string{"X264", "SSSP"} {
			if err := srv.Admit(app); err != nil {
				log.Fatal(err)
			}
		}
		res, err := srv.Run(p, 60)
		if err != nil {
			log.Fatal(err)
		}
		if res.CapViolations > 0 {
			log.Fatalf("policy %v drew above the cap %d times", p, res.CapViolations)
		}
		return res
	}

	baseline := run(powerstruggle.UtilUnaware, 0)
	duty := run(powerstruggle.AppResAware, 0)
	battery := run(powerstruggle.AppResESDAware, 300e3)

	fmt.Printf("  %-22s mode=%-5s total=%.3f\n", "Util-Unaware (RAPL)", baseline.Mode, baseline.TotalPerf)
	fmt.Printf("  %-22s mode=%-5s total=%.3f\n", "App+Res-Aware", duty.Mode, duty.TotalPerf)
	fmt.Printf("  %-22s mode=%-5s total=%.3f\n", "App+Res+ESD-Aware", battery.Mode, battery.TotalPerf)
	fmt.Printf("\nbattery boost over the RAPL baseline: %.2fx\n", battery.TotalPerf/baseline.TotalPerf)

	// Show a couple of battery cycles: grid draw pinned at the cap,
	// server draw swinging between the idle floor (charging) and well
	// above the cap (discharging).
	fmt.Println("\none storage cycle (grid stays at/below the cap throughout):")
	for _, s := range battery.Samples {
		if s.T > 4 {
			break
		}
		fmt.Printf("  t=%5.2fs server=%6.1fW grid=%6.1fW soc=%.4f\n", s.T, s.ServerW, s.GridW, s.SoC)
	}
}
