// Sloguard: co-locating a latency-critical service with a batch job
// under a power cap. The paper's objective weighs all applications
// evenly; its footnote notes the requirements equally apply to
// latency-critical applications — which need a performance *floor*, not
// just a fair share. This example admits the critical application with
// an SLO floor and shows the mediator carving out its watts first and
// utility-maximizing only the remainder.
//
// Run with:
//
//	go run ./examples/sloguard
package main

import (
	"fmt"
	"log"

	"powerstruggle"
)

func main() {
	log.SetFlags(0)

	const capW = 95
	fmt.Printf("P_cap = %d W: latency-critical ferret + batch BFS\n\n", capW)

	run := func(floor float64) *powerstruggle.Result {
		cfg := powerstruggle.Defaults()
		cfg.BatteryJ = 0
		srv, err := powerstruggle.NewServer(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.SetCap(capW); err != nil {
			log.Fatal(err)
		}
		if err := srv.AdmitCritical("ferret", 1, floor); err != nil {
			log.Fatal(err)
		}
		if err := srv.Admit("BFS"); err != nil {
			log.Fatal(err)
		}
		res, err := srv.Run(powerstruggle.AppResAware, 30)
		if err != nil {
			log.Fatal(err)
		}
		if res.CapViolations > 0 {
			log.Fatalf("cap violated %d times", res.CapViolations)
		}
		return res
	}

	best := run(0)
	fmt.Printf("best-effort:      ferret %.3f (%.1f W)   BFS %.3f (%.1f W)   total %.3f\n",
		best.AppPerf[0], best.AppBudgetW[0], best.AppPerf[1], best.AppBudgetW[1], best.TotalPerf)

	for _, floor := range []float64{0.80, 0.90} {
		guarded := run(floor)
		fmt.Printf("SLO floor %.2f:   ferret %.3f (%.1f W)   BFS %.3f (%.1f W)   total %.3f\n",
			floor, guarded.AppPerf[0], guarded.AppBudgetW[0],
			guarded.AppPerf[1], guarded.AppBudgetW[1], guarded.TotalPerf)
	}

	fmt.Println()
	fmt.Println("Raising the floor buys the critical application guaranteed watts;")
	fmt.Println("the batch job absorbs the squeeze, and the cap still holds.")
}
