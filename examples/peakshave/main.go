// Peakshave: the cluster-scale experiment (paper Section IV-D). A
// ten-server fleet replays peak-shaving power caps derived from a
// diurnal trace; per-server mediation (Equal(Ours)) is compared with the
// RAPL state of the art and with consolidation-plus-migration.
//
// Run with:
//
//	go run ./examples/peakshave
package main

import (
	"fmt"
	"log"

	"powerstruggle/internal/cluster"
	"powerstruggle/internal/exp"
	"powerstruggle/internal/trace"
)

func main() {
	log.SetFlags(0)

	env, err := exp.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Fig12(env, exp.Fig12Config{Servers: 10, StepSeconds: 300})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Cluster peak shaving, 10 servers, 24 h trace:")
	fmt.Printf("%-8s %-34s %10s %12s\n", "shave", "strategy", "perf", "efficiency")
	for _, lv := range res.Levels {
		for _, s := range []cluster.Strategy{cluster.EqualRAPL, cluster.EqualOurs, cluster.ConsolidateMigrate} {
			r := lv.Results[s]
			fmt.Printf("%-8.0f %-34s %9.1f%% %12.3f\n", lv.ShaveFrac*100, s, r.AvgPerfFrac*100, r.Efficiency)
		}
	}

	// Show the shape of the cap schedule around the daily peak.
	caps := res.Caps[0.30]
	peakW := trace.Peak(res.Demand)
	fmt.Println("\ncap schedule excerpt around the evening peak (30% shaving):")
	for _, p := range caps {
		h := p.T / 3600
		if h < 19 || h > 21 {
			continue
		}
		if int(p.T)%1800 != 0 {
			continue
		}
		fmt.Printf("  %05.2fh cap=%6.0f W (demand peak %.0f W)\n", h, p.V, peakW)
	}
	fmt.Println("\nMediating each server's power struggle extracts more performance")
	fmt.Println("per granted watt than either RAPL capping or migrating onto fewer")
	fmt.Println("uncapped servers.")
}
