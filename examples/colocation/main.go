// Colocation: sweep the server power cap for every Table II mix and
// watch the "power struggle" emerge — at loose caps all policies agree,
// and the tighter the cap, the more it pays to apportion power by
// utility (the paper's Fig. 8/10 arc in one run).
//
// Run with:
//
//	go run ./examples/colocation
package main

import (
	"fmt"
	"log"

	"powerstruggle"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Average normalized server throughput across the 15 mixes")
	fmt.Printf("%-8s %14s %14s %14s\n", "cap(W)", "Util-Unaware", "App+Res-Aware", "gain")
	for _, capW := range []float64{120, 110, 100, 95, 90, 85, 80} {
		uu, err := averageAcrossMixes(powerstruggle.UtilUnaware, capW)
		if err != nil {
			log.Fatal(err)
		}
		ar, err := averageAcrossMixes(powerstruggle.AppResAware, capW)
		if err != nil {
			log.Fatal(err)
		}
		gain := 0.0
		if uu > 0 {
			gain = (ar/uu - 1) * 100
		}
		fmt.Printf("%-8.0f %14.3f %14.3f %+13.1f%%\n", capW, uu, ar, gain)
	}
	fmt.Println()
	fmt.Println("The tighter the cap, the more the mediation matters — the")
	fmt.Println("paper's central observation.")
}

// averageAcrossMixes measures one policy at one cap over all mixes.
func averageAcrossMixes(p powerstruggle.Policy, capW float64) (float64, error) {
	cfg := powerstruggle.Defaults()
	cfg.BatteryJ = 0 // no storage in this comparison
	var sum float64
	mixes := powerstruggle.Mixes()
	for _, m := range mixes {
		srv, err := powerstruggle.NewServer(cfg)
		if err != nil {
			return 0, err
		}
		if err := srv.SetCap(capW); err != nil {
			return 0, err
		}
		if err := srv.Admit(m.App1); err != nil {
			return 0, err
		}
		if err := srv.Admit(m.App2); err != nil {
			return 0, err
		}
		res, err := srv.Run(p, 20)
		if err != nil {
			return 0, fmt.Errorf("mix %d: %w", m.ID, err)
		}
		if res.CapViolations > 0 {
			return 0, fmt.Errorf("mix %d violated the %g W cap %d times", m.ID, capW, res.CapViolations)
		}
		sum += res.TotalPerf
	}
	return sum / float64(len(mixes)), nil
}
